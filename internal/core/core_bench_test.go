package core

import (
	"math/rand"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/counting"
	"ccs/internal/dataset"
)

// benchDB caches a moderately sized planted database across benchmarks.
var benchDB *dataset.DB

func getBenchDB(b *testing.B) *dataset.DB {
	b.Helper()
	if benchDB == nil {
		benchDB = corrDB(rand.New(rand.NewSource(1)), 30, 5000)
	}
	return benchDB
}

func benchParams() Params {
	return Params{Alpha: 0.95, CellSupportFrac: 0.05, CTFraction: 0.25, MaxLevel: 4}
}

func benchQuery() *constraint.Conjunction {
	return constraint.And(
		constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 15),
		constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, 40),
	)
}

func BenchmarkBMS(b *testing.B) {
	db := getBenchDB(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMS(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSPlus(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlus(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSPlusPlus(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSStar(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSStar(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSStarStar(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSStarStar(q, StarStarOptions{PushMonotoneSuccinct: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgo runs every mining algorithm end to end over a shared
// prefix-cached counter — the configuration ccsserve uses per request and
// the suite cmd/ccsperf tracks in BENCH_counting.json.
func BenchmarkAlgo(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	qMin := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	cases := []struct {
		name string
		run  func(m *Miner) error
	}{
		{"bms", func(m *Miner) error { _, err := m.BMS(); return err }},
		{"bms-plus", func(m *Miner) error { _, err := m.BMSPlus(q); return err }},
		{"bms-plus-plus", func(m *Miner) error { _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); return err }},
		{"bms-star", func(m *Miner) error { _, err := m.BMSStar(qMin); return err }},
		{"bms-star-star", func(m *Miner) error {
			_, err := m.BMSStarStar(qMin, StarStarOptions{PushMonotoneSuccinct: true})
			return err
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cc := counting.NewCachedBitmapCounter(db, counting.DefaultCacheBytes)
			defer cc.ReleaseCache()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := New(db, benchParams(), WithCounter(cc))
				if err != nil {
					b.Fatal(err)
				}
				if err := c.run(m); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cc.CacheStats().HitRate(), "cache-hit-rate")
		})
	}
	// Brute refuses catalogs past 24 items, so it gets its own small DB.
	b.Run("brute", func(b *testing.B) {
		small := corrDB(rand.New(rand.NewSource(2)), 15, 2000)
		cc := counting.NewCachedBitmapCounter(small, counting.DefaultCacheBytes)
		defer cc.ReleaseCache()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := New(small, benchParams(), WithCounter(cc))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Brute(q, 3); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cc.CacheStats().HitRate(), "cache-hit-rate")
	})
}

// BenchmarkAblationPrefixCache contrasts the plain bitmap kernel with the
// prefix-cached one on the same BMS++ run — the end-to-end effect of the
// shared-prefix intersection cache.
func BenchmarkAblationPrefixCacheOff(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(counting.NewBitmapCounter(db)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPrefixCacheOn(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	cc := counting.NewCachedBitmapCounter(db, counting.DefaultCacheBytes)
	defer cc.ReleaseCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(cc))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cc.CacheStats().HitRate(), "cache-hit-rate")
}

// BenchmarkAblationScanVsBitmap contrasts the two counting engines on the
// same BMS++ run — the design choice DESIGN.md calls out.
func BenchmarkAblationScanCounter(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(counting.NewScanCounter(db)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBitmapCounter(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(counting.NewBitmapCounter(db)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWitnessPush measures the paper's Modification I/II
// against the exact mode on a monotone succinct constraint.
func BenchmarkAblationWitnessPushOn(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{PushMonotoneSuccinct: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWitnessPushOff(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
