package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ccs/internal/constraint"
	"ccs/internal/counting"
	"ccs/internal/dataset"
	"ccs/internal/gen"
	"ccs/internal/obs"
	"ccs/internal/tidlist"
)

// busySkew is max over mean of the non-zero per-worker busy times.
func busySkew(busy []float64) float64 {
	var sum, max float64
	n := 0
	for _, s := range busy {
		if s <= 0 {
			continue
		}
		sum += s
		n++
		if s > max {
			max = s
		}
	}
	if n == 0 || sum == 0 {
		return 1
	}
	return max / (sum / float64(n))
}

// benchDB caches a moderately sized planted database across benchmarks.
var benchDB *dataset.DB

func getBenchDB(b *testing.B) *dataset.DB {
	b.Helper()
	if benchDB == nil {
		benchDB = corrDB(rand.New(rand.NewSource(1)), 30, 5000)
	}
	return benchDB
}

func benchParams() Params {
	return Params{Alpha: 0.95, CellSupportFrac: 0.05, CTFraction: 0.25, MaxLevel: 4}
}

func benchQuery() *constraint.Conjunction {
	return constraint.And(
		constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 15),
		constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, 40),
	)
}

func BenchmarkBMS(b *testing.B) {
	db := getBenchDB(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMS(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSPlus(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlus(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSPlusPlus(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSStar(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSStar(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSStarStar(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSStarStar(q, StarStarOptions{PushMonotoneSuccinct: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallelWorkers is the worker count of BenchmarkAlgo's parallel
// mode: GOMAXPROCS on a real multi-core runner, and a fixed 4 when
// GOMAXPROCS is 1 so the sharded engine is still exercised (and its
// overhead visible) on single-core machines.
func benchParallelWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 4
}

// benchSerialNs records each algorithm's serial per-op time within one
// BenchmarkAlgo invocation so the parallel sub-benchmark can report its
// speedup. Sub-benchmarks run in declaration order (serial before
// parallel), never concurrently.
var benchSerialNs = map[string]float64{}

// BenchmarkAlgo runs every mining algorithm end to end over a shared
// prefix-cached counter — the configuration ccsserve uses per request —
// in two modes: serial (Workers=1, the exact old path) and parallel
// (Workers=GOMAXPROCS, the sharded level engine). cmd/ccsperf tracks the
// suite in BENCH_core.json; the parallel lines carry "workers" and
// "speedup" metrics (speedup = serial ns/op of the same run ÷ parallel
// ns/op, so it is meaningful only on multi-core runners).
func BenchmarkAlgo(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	qMin := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	cases := []struct {
		name string
		run  func(m *Miner) error
	}{
		{"bms", func(m *Miner) error { _, err := m.BMS(); return err }},
		{"bms-plus", func(m *Miner) error { _, err := m.BMSPlus(q); return err }},
		{"bms-plus-plus", func(m *Miner) error { _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); return err }},
		{"bms-star", func(m *Miner) error { _, err := m.BMSStar(qMin); return err }},
		{"bms-star-star", func(m *Miner) error {
			_, err := m.BMSStarStar(qMin, StarStarOptions{PushMonotoneSuccinct: true})
			return err
		}},
		{"all-valid", func(m *Miner) error { _, err := m.AllValid(q); return err }},
	}
	for _, c := range cases {
		for _, mode := range []struct {
			name    string
			workers int
		}{
			{"serial", 1},
			{"parallel", benchParallelWorkers()},
		} {
			b.Run(c.name+"/"+mode.name, func(b *testing.B) {
				cc := counting.NewCachedBitmapCounter(db, counting.DefaultCacheBytes)
				defer cc.ReleaseCache()
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					m, err := New(db, benchParams(), WithCounter(cc), WithWorkers(mode.workers))
					if err != nil {
						b.Fatal(err)
					}
					if err := c.run(m); err != nil {
						b.Fatal(err)
					}
				}
				perOp := float64(time.Since(start).Nanoseconds()) / float64(b.N)
				b.StopTimer()
				b.ReportMetric(float64(mode.workers), "workers")
				if mode.name == "serial" {
					if prev, ok := benchSerialNs[c.name]; !ok || perOp < prev {
						benchSerialNs[c.name] = perOp
					}
				} else if serial, ok := benchSerialNs[c.name]; ok && perOp > 0 {
					b.ReportMetric(serial/perOp, "speedup")
					// One extra profiled run outside the timer attributes the
					// parallel engine's time: stall-frac is the share of wall
					// the evaluator spent blocked on shard hand-off, shard-skew
					// is max/mean worker busy (1.0 = perfectly balanced). These
					// land in BENCH_core.json so a speedup regression names its
					// phase, not just its magnitude.
					prof := obs.NewProfile(c.name)
					m, err := New(db, benchParams(), WithCounter(cc), WithWorkers(mode.workers), WithProfile(prof))
					if err != nil {
						b.Fatal(err)
					}
					if err := c.run(m); err != nil {
						b.Fatal(err)
					}
					rec := prof.Record()
					if rec.WallSeconds > 0 {
						b.ReportMetric(rec.Phases[obs.PhaseStall].Seconds/rec.WallSeconds, "stall-frac")
					}
					b.ReportMetric(busySkew(rec.WorkerBusySeconds), "shard-skew")
				}
				b.ReportMetric(cc.CacheStats().HitRate(), "cache-hit-rate")
			})
		}
	}
	// Brute refuses catalogs past 24 items, so it gets its own small DB.
	b.Run("brute", func(b *testing.B) {
		small := corrDB(rand.New(rand.NewSource(2)), 15, 2000)
		cc := counting.NewCachedBitmapCounter(small, counting.DefaultCacheBytes)
		defer cc.ReleaseCache()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := New(small, benchParams(), WithCounter(cc))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Brute(q, 3); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cc.CacheStats().HitRate(), "cache-hit-rate")
	})
}

// largeDBs caches the large-lattice corpora (one per transaction count) so
// every sub-benchmark shares one generation pass.
var largeDBs = map[int]*dataset.DB{}

func getLargeDB(b *testing.B, numTx int) *dataset.DB {
	b.Helper()
	if largeDBs[numTx] == nil {
		db, err := gen.Lattice(gen.DefaultLattice(numTx, 1))
		if err != nil {
			b.Fatal(err)
		}
		largeDBs[numTx] = db
	}
	return largeDBs[numTx]
}

// largeTxCount picks the corpus size: one million transactions in a full
// run, a tenth of that under -short so `make bench` stays CI-sized. The
// count is baked into every benchmark name, so short and full runs never
// name-match in a baseline comparison.
func largeTxCount() int {
	if testing.Short() {
		return 100_000
	}
	return 1_000_000
}

// largeParams deepens MaxLevel to 6 and raises the cell-support threshold:
// at 10^5-10^6 transactions the chi-square test flags nearly any pair, so
// the support threshold is what keeps the candidate frontier to the
// corpus's correlated blocks plus the Zipf head instead of an
// every-frequent-subset explosion.
func largeParams() Params {
	return Params{Alpha: 0.95, CellSupportFrac: 0.15, CTFraction: 0.25, MaxLevel: 6}
}

// largeSerialNs mirrors benchSerialNs for the large corpus, keyed by
// algorithm and transaction count.
var largeSerialNs = map[string]float64{}

// BenchmarkAlgoLarge is BenchmarkAlgo on the large-lattice corpus (ccsgen
// method 3): Zipfian singles plus dense correlated blocks whose subsets
// stay correlated deep into the lattice, at a scale where shard counting
// cost dominates hand-off overhead. Parallel modes pin worker counts 4 and
// 8 — rather than GOMAXPROCS — so BENCH_core.json records speedups
// comparable across machines; ccsperf -core-check holds the w8 speedup to
// a floor once a multi-core baseline commits one at or above it.
func BenchmarkAlgoLarge(b *testing.B) {
	numTx := largeTxCount()
	db := getLargeDB(b, numTx)
	q := benchQuery()
	qMin := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	cases := []struct {
		name string
		run  func(m *Miner) error
	}{
		{"bms", func(m *Miner) error { _, err := m.BMS(); return err }},
		{"bms-plus", func(m *Miner) error { _, err := m.BMSPlus(q); return err }},
		{"bms-plus-plus", func(m *Miner) error { _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); return err }},
		{"bms-star", func(m *Miner) error { _, err := m.BMSStar(qMin); return err }},
		{"bms-star-star", func(m *Miner) error {
			_, err := m.BMSStarStar(qMin, StarStarOptions{PushMonotoneSuccinct: true})
			return err
		}},
		{"all-valid", func(m *Miner) error { _, err := m.AllValid(q); return err }},
	}
	for _, c := range cases {
		for _, mode := range []struct {
			name    string
			workers int
		}{
			{"serial", 1},
			{"parallel-w4", 4},
			{"parallel-w8", 8},
		} {
			key := fmt.Sprintf("%s/tx=%d", c.name, numTx)
			b.Run(key+"/"+mode.name, func(b *testing.B) {
				cc := counting.NewCachedBitmapCounter(db, counting.DefaultCacheBytes)
				defer cc.ReleaseCache()
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					m, err := New(db, largeParams(), WithCounter(cc), WithWorkers(mode.workers))
					if err != nil {
						b.Fatal(err)
					}
					if err := c.run(m); err != nil {
						b.Fatal(err)
					}
				}
				perOp := float64(time.Since(start).Nanoseconds()) / float64(b.N)
				b.StopTimer()
				b.ReportMetric(float64(mode.workers), "workers")
				if mode.workers == 1 {
					if prev, ok := largeSerialNs[key]; !ok || perOp < prev {
						largeSerialNs[key] = perOp
					}
				} else if serial, ok := largeSerialNs[key]; ok && perOp > 0 {
					b.ReportMetric(serial/perOp, "speedup")
					// One profiled run outside the timer attributes the engine's
					// time, as in BenchmarkAlgo: stall-frac is the evaluator's
					// blocked share of wall, shard-skew max/mean worker busy.
					prof := obs.NewProfile(c.name)
					m, err := New(db, largeParams(), WithCounter(cc),
						WithWorkers(mode.workers), WithProfile(prof))
					if err != nil {
						b.Fatal(err)
					}
					if err := c.run(m); err != nil {
						b.Fatal(err)
					}
					rec := prof.Record()
					if rec.WallSeconds > 0 {
						b.ReportMetric(rec.Phases[obs.PhaseStall].Seconds/rec.WallSeconds, "stall-frac")
					}
					b.ReportMetric(busySkew(rec.WorkerBusySeconds), "shard-skew")
				}
				b.ReportMetric(cc.CacheStats().HitRate(), "cache-hit-rate")
			})
		}
	}
}

// BenchmarkAblationPrefixCache contrasts the plain bitmap kernel with the
// prefix-cached one on the same BMS++ run — the end-to-end effect of the
// shared-prefix intersection cache.
func BenchmarkAblationPrefixCacheOff(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(counting.NewBitmapCounter(db)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPrefixCacheOn(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	cc := counting.NewCachedBitmapCounter(db, counting.DefaultCacheBytes)
	defer cc.ReleaseCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(cc))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cc.CacheStats().HitRate(), "cache-hit-rate")
}

// BenchmarkAblationScanVsBitmap contrasts the two counting engines on the
// same BMS++ run — the design choice DESIGN.md calls out.
func BenchmarkAblationScanCounter(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(counting.NewScanCounter(db)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBitmapCounter(b *testing.B) {
	db := getBenchDB(b)
	q := benchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams(), WithCounter(counting.NewBitmapCounter(db)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWitnessPush measures the paper's Modification I/II
// against the exact mode on a monotone succinct constraint.
func BenchmarkAblationWitnessPushOn(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{PushMonotoneSuccinct: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWitnessPushOff(b *testing.B) {
	db := getBenchDB(b)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(db, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgoSparse mines the long-tail corpus end to end with the
// vertical backend forced each way. Per-op includes the index build — the
// miner constructs a fresh counter per iteration — so B/op tracks what a
// service pays per mine on a sparse tenant. The catalog is shrunk from the
// generator's 4000-item default and the walk stops at pairs to keep each
// op benchmark-sized; that pushes the density up near the auto cutoff,
// which is why both backends are forced explicitly here — the full-catalog
// sparse regime is the counting suite's BenchmarkCountSparse. The
// hard bytes floor gates the counting suite's BenchmarkCountSparse; this
// line records the end-to-end consequence.
func BenchmarkAlgoSparse(b *testing.B) {
	cfg := gen.DefaultSparse(10000, 1)
	cfg.NumItems = 100
	cfg.HeadItems = 15
	db, err := gen.Sparse(cfg)
	if err != nil {
		b.Fatal(err)
	}
	params := Params{Alpha: 0.95, CellSupport: 25, CTFraction: 0.25, MaxLevel: 2}
	for _, be := range []tidlist.Backend{tidlist.BackendDense, tidlist.BackendCompressed} {
		b.Run("bms/backend="+string(be), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cc := counting.NewBitmapCounterBackend(db, be)
				m, err := New(db, params, WithCounter(cc))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.BMS(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
