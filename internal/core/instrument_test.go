package core

import (
	"math/rand"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/obs"
)

// TestLevelDurationsMatchLevels checks the instrumentation invariant on
// every algorithm: one LevelDurations entry per Stats.Levels increment.
func TestLevelDurationsMatchLevels(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(7)), 8, 400)
	m := newMiner(t, db)
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 6))

	runs := map[string]func() (*Result, error){
		"BMS":      m.BMS,
		"BMS+":     func() (*Result, error) { return m.BMSPlus(q) },
		"BMS++":    func() (*Result, error) { return m.BMSPlusPlus(q, PlusPlusOptions{}) },
		"BMS*":     func() (*Result, error) { return m.BMSStar(q) },
		"BMS**":    func() (*Result, error) { return m.BMSStarStar(q, StarStarOptions{}) },
		"AllValid": func() (*Result, error) { return m.AllValid(q) },
	}
	for name, run := range runs {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.Levels == 0 {
			t.Errorf("%s: no levels visited; test database too small", name)
		}
		if got, want := len(res.Stats.LevelDurations), res.Stats.Levels; got != want {
			t.Errorf("%s: %d level durations for %d levels", name, got, want)
		}
		for i, d := range res.Stats.LevelDurations {
			if d < 0 {
				t.Errorf("%s: level %d has negative duration %v", name, i, d)
			}
		}
	}
}

// TestMiningMetrics checks a run moves the package counters: started,
// completed, levels, candidates and cells all advance by the run's stats.
func TestMiningMetrics(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(11)), 8, 400)
	m := newMiner(t, db)

	reg := obs.Default()
	started := reg.CounterVec(MetricMinesTotal, "", "algo").With("bms")
	completed := reg.CounterVec(MetricMinesCompletedTotal, "", "algo").With("bms")
	levels := reg.CounterVec(MetricLevelsTotal, "", "algo").With("bms")
	cands := reg.CounterVec(MetricCandidatesTotal, "", "algo").With("bms")
	cells := reg.CounterVec(MetricCellsCountedTotal, "", "algo").With("bms")

	s0, c0, l0, n0, e0 := started.Value(), completed.Value(), levels.Value(), cands.Value(), cells.Value()
	res, err := m.BMS()
	if err != nil {
		t.Fatal(err)
	}
	if started.Value() != s0+1 || completed.Value() != c0+1 {
		t.Errorf("started/completed = %d/%d, want %d/%d", started.Value(), completed.Value(), s0+1, c0+1)
	}
	if got, want := levels.Value()-l0, int64(res.Stats.Levels); got != want {
		t.Errorf("levels counter advanced %d, want %d", got, want)
	}
	if got, want := cands.Value()-n0, int64(res.Stats.Candidates); got != want {
		t.Errorf("candidates counter advanced %d, want %d", got, want)
	}
	if cells.Value() == e0 {
		t.Error("cells counter did not advance")
	}
}

// TestMiningMetricsTruncated checks a budget-truncated run lands in the
// truncated counter, not the completed one.
func TestMiningMetricsTruncated(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(13)), 8, 400)
	m, err := New(db, testParams(), WithBudget(Budget{MaxCandidates: 1}))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	truncated := reg.CounterVec(MetricMinesTruncatedTotal, "", "algo").With("bms")
	completed := reg.CounterVec(MetricMinesCompletedTotal, "", "algo").With("bms")
	t0, c0 := truncated.Value(), completed.Value()
	res, err := m.BMS()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("run with MaxCandidates=1 did not truncate")
	}
	if truncated.Value() != t0+1 || completed.Value() != c0 {
		t.Errorf("truncated/completed advanced to %d/%d, want %d/%d",
			truncated.Value(), completed.Value(), t0+1, c0)
	}
}
