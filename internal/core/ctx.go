package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ccs/internal/contingency"
	"ccs/internal/counting"
	"ccs/internal/itemset"
	"ccs/internal/obs"
)

// ErrBudgetExceeded is the truncation cause when a run exhausts its Budget.
// Causes carried on Result.Cause wrap it together with the limit that
// tripped, so errors.Is(cause, ErrBudgetExceeded) distinguishes budget
// exhaustion from caller-driven cancellation.
var ErrBudgetExceeded = errors.New("core: budget exceeded")

// Budget bounds the resources one mining run may consume. A zero field is
// unlimited; the zero Budget imposes no limits at all. Limits are enforced
// at level/batch granularity: when one trips, the run stops counting,
// discards the level in flight, and returns the answers of the completed
// levels with Result.Truncated set — it does not fail.
type Budget struct {
	// MaxWall caps the wall-clock time of the run. It is enforced through a
	// derived context deadline, so a counter that honors cancellation stops
	// mid-batch.
	MaxWall time.Duration
	// MaxCandidates caps the number of candidate sets generated across all
	// levels (Stats.Candidates).
	MaxCandidates int
	// MaxCells caps the number of contingency-table cells counted: each
	// k-set charges 2^k cells when its batch is issued.
	MaxCells int64
}

// WithBudget installs per-run resource limits on the Miner. The limits
// apply to every subsequent run, Context variant or not.
func WithBudget(b Budget) Option {
	return func(cfg *minerConfig) { cfg.budget = b }
}

// runCtl carries one run's cancellation and budget state. Every algorithm
// loop consults it at level boundaries (interrupted) and charges it per
// counting batch (countBatch); the first cause observed is sticky.
type runCtl struct {
	ctx          context.Context
	budget       Budget
	wallDeadline time.Time // non-zero only when budget.MaxWall is set
	cells        int64     // contingency cells charged so far
	cause        error

	// prof is the run's profiler; nil means profiling is off and every
	// collection point reduces to one pointer-nil branch.
	prof *obs.Profile
	// sp, when non-nil, is the serial counting arena the next
	// countBatchCtl call threads through the counter's context. Only the
	// mining goroutine touches it (set before the call, cleared after).
	sp *counting.ShardProf
	// scratch holds the parallel level engine's reusable per-level
	// buffers. A runCtl belongs to exactly one run, so reuse across its
	// levels needs no synchronization beyond the engine's own barriers.
	scratch levelScratch
}

// newCtl binds ctx and the miner's budget into a fresh control block.
// release must be called when the run ends (it drops the MaxWall timer).
func (m *Miner) newCtl(ctx context.Context) (ctl *runCtl, release context.CancelFunc) {
	ctl = &runCtl{ctx: ctx, budget: m.budget, prof: m.prof}
	m.prof.SetWorkers(m.effectiveWorkers())
	release = func() {}
	if m.budget.MaxWall > 0 {
		ctl.wallDeadline = time.Now().Add(m.budget.MaxWall)
		ctl.ctx, release = context.WithDeadline(ctx, ctl.wallDeadline)
	}
	return ctl, release
}

// interrupted reports the run's truncation cause, or nil to keep going.
func (c *runCtl) interrupted(stats *Stats) error {
	if c.cause != nil {
		return c.cause
	}
	if err := c.ctx.Err(); err != nil {
		c.cause = c.classify(err)
		return c.cause
	}
	if c.budget.MaxCandidates > 0 && stats.Candidates > c.budget.MaxCandidates {
		c.cause = fmt.Errorf("%w: %d candidates generated (limit %d)",
			ErrBudgetExceeded, stats.Candidates, c.budget.MaxCandidates)
		return c.cause
	}
	if c.budget.MaxCells > 0 && c.cells > c.budget.MaxCells {
		c.cause = fmt.Errorf("%w: %d contingency cells counted (limit %d)",
			ErrBudgetExceeded, c.cells, c.budget.MaxCells)
		return c.cause
	}
	return nil
}

// classify attributes a context error to the budget when the run's own
// wall-clock deadline (not an earlier caller deadline) is what fired.
func (c *runCtl) classify(err error) error {
	if errors.Is(err, context.DeadlineExceeded) &&
		!c.wallDeadline.IsZero() && !time.Now().Before(c.wallDeadline) {
		return fmt.Errorf("%w: wall clock limit %v: %v", ErrBudgetExceeded, c.budget.MaxWall, err)
	}
	return err
}

// truncation classifies an error bubbling out of a counting batch: a
// non-nil result is the truncation cause (stop, keep completed levels),
// nil means a genuine failure the caller must return.
func (c *runCtl) truncation(err error) error {
	if err == nil {
		return nil
	}
	if c.cause != nil {
		return c.cause
	}
	if errors.Is(err, ErrBudgetExceeded) {
		c.cause = err
		return c.cause
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		c.cause = c.classify(err)
		return c.cause
	}
	return nil
}

// countBatchCtl builds tables for the batch under ctl: it charges the cell
// budget, bails out when the run is interrupted, and uses the counter's
// context-aware path when available so cancellation lands mid-batch.
//
// Batch ordering contract: every candidate generator (pairs, extend,
// extendAny) sorts its output with itemset.SortSets before it reaches this
// call, so sets that share a prefix arrive adjacent. The cached counting
// engines rely on that adjacency — a sibling group hits the prefix
// TID-list its first member materialized, and the parallel counter shards
// the batch along those prefix runs — so any new generator must keep
// emitting canonically sorted batches.
func (m *Miner) countBatchCtl(ctl *runCtl, stats *Stats, sets []itemset.Set) ([]*contingency.Table, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	for _, s := range sets {
		ctl.cells += int64(1) << uint(s.Size())
	}
	if cause := ctl.interrupted(stats); cause != nil {
		return nil, cause
	}
	stats.DBScans++
	stats.SetsConsidered += len(sets)
	cctx := ctl.ctx
	if ctl.sp != nil {
		cctx = counting.WithShardProf(cctx, ctl.sp)
	}
	if cc, ok := m.cnt.(counting.ContextCounter); ok && (cctx.Done() != nil || ctl.sp != nil) {
		return cc.CountTablesContext(cctx, sets)
	}
	return m.cnt.CountTables(sets)
}

// truncate marks a result as cut short by cause.
func truncate(res *Result, cause error) *Result {
	res.Truncated = true
	res.Cause = cause
	return res
}

// BMSContext is BMS honoring ctx and the Miner's Budget; see the Result
// fields Truncated and Cause for the partial-answer contract.
func (m *Miner) BMSContext(ctx context.Context) (*Result, error) {
	const algo = "bms"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	out, err := m.runBaseline(ctl, algo)
	if err != nil {
		return nil, err
	}
	res := &Result{Answers: out.sig, Stats: out.stats}
	if out.cause != nil {
		truncate(res, out.cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}
