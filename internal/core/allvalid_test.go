package core

import (
	"math/rand"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/itemset"
)

// bruteAllValid derives the full valid solution set from the reference.
func bruteAllValid(t *testing.T, m *Miner, q *constraint.Conjunction, maxSize int) []itemset.Set {
	t.Helper()
	brute, err := m.Brute(q, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	var out []itemset.Set
	for _, s := range brute.Space {
		if q.Satisfies(m.Catalog(), s) {
			out = append(out, s)
		}
	}
	itemset.SortSets(out)
	return out
}

func TestAllValidMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			res, err := m.AllValid(q)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteAllValid(t, m, q, 5)
			if !sameSets(res.Answers, want) {
				t.Fatalf("seed %d query %s: AllValid = %s, brute = %s",
					seed, name, setsString(res.Answers), setsString(want))
			}
		}
	}
}

func TestAllValidHandlesAvg(t *testing.T) {
	// The whole point: avg constraints (neither a.m. nor monotone) are
	// answered exactly.
	for seed := int64(0); seed < 5; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		q := constraint.And(constraint.NewAggregate(constraint.AggAvg, constraint.Price, constraint.LE, 4))
		res, err := m.AllValid(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAllValid(t, m, q, 5)
		if !sameSets(res.Answers, want) {
			t.Fatalf("seed %d: AllValid(avg) = %s, brute = %s",
				seed, setsString(res.Answers), setsString(want))
		}
	}
}

func TestAllValidAvgSpaceCanHaveHoles(t *testing.T) {
	// Demonstrate the paper's future-work observation: with an avg
	// constraint a valid set can have an invalid subset AND an invalid
	// superset — the space is not a single bordered region.
	db := corrDB(rand.New(rand.NewSource(3)), 7, 150)
	m := newMiner(t, db)
	q := constraint.And(
		constraint.NewAggregate(constraint.AggAvg, constraint.Price, constraint.GE, 3),
		constraint.NewAggregate(constraint.AggAvg, constraint.Price, constraint.LE, 5),
	)
	res, err := m.AllValid(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Answers {
		if !q.Satisfies(db.Catalog, s) {
			t.Fatalf("invalid answer %v", s)
		}
	}
	// consistency with brute regardless of whether holes materialized
	want := bruteAllValid(t, m, q, 5)
	if !sameSets(res.Answers, want) {
		t.Fatalf("AllValid = %s, brute = %s", setsString(res.Answers), setsString(want))
	}
}

func TestAllValidSupersetOfMinValid(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(6)), 7, 150)
	m := newMiner(t, db)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 3))
	all, err := m.AllValid(q)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := m.BMSStar(q)
	if err != nil {
		t.Fatal(err)
	}
	have := itemset.NewRegistry()
	for _, s := range all.Answers {
		have.Add(s)
	}
	for _, s := range mv.Answers {
		if !have.Has(s) {
			t.Fatalf("MINVALID member %v missing from AllValid", s)
		}
	}
	if len(all.Answers) < len(mv.Answers) {
		t.Fatalf("AllValid smaller than MINVALID")
	}
}
