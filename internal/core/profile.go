package core

import (
	"time"

	"ccs/internal/counting"
	"ccs/internal/itemset"
	"ccs/internal/obs"
)

// This file holds the mining core's profiler collection points (DESIGN.md
// §13). The profiler itself — accumulators, JSON schema, nil-safety — lives
// in internal/obs; the core decides where the phase boundaries are:
//
//   - candgen:  pairs/extend/extendAny between levels (ctl.candgen)
//   - precheck: a level's anti-monotone screening stage
//   - count:    counting on the mining goroutine (the serial path)
//   - evaluate: chi-squared evaluation and answer collection
//   - stall:    the parallel evaluator blocked on an unfinished shard
//
// All phases are measured on the mining goroutine, so a run's phase
// totals sum to its wall clock (up to the "other" residual) at every
// worker count — which is what lets ccsprof decompose a serial-vs-parallel
// wall-time gap exactly into per-phase deltas. Per-shard work (sets,
// cells, cache traffic, goroutine-seconds) is collected in arena-style
// counting.ShardProf blocks, one per shard, merged into the level record
// in shard index order at level commit — deterministic at every worker
// count. Every collection point guards on one pointer, so a run without
// WithProfile costs nothing: no clock reads, no allocations.

// MetricPhaseSeconds observes profiled mining wall time by phase
// (candgen/precheck/count/evaluate/stall), on the sub-millisecond buckets.
// Only profiled runs feed it.
const MetricPhaseSeconds = "ccs_mine_phase_seconds"

var phaseSeconds = obs.Default().HistogramVec(MetricPhaseSeconds,
	"Profiled mining wall time by phase (per level; candgen per generation).",
	obs.SubMillisecondBuckets, "phase")

// WithProfile attaches a per-run profiler. The profile observes every
// subsequent run, so use one Miner per profiled run (the HTTP service and
// ccsmine both build one per request); concurrent runs sharing a profile
// interleave their levels. A nil profile leaves profiling off.
func WithProfile(p *obs.Profile) Option {
	return func(cfg *minerConfig) { cfg.prof = p }
}

// startLevel opens per-level profiling for spec; cells0 snapshots the cell
// charge so endLevel can attribute the level's delta. Returns (nil, 0)
// when profiling is off.
func (c *runCtl) startLevel(spec levelSpec) (*obs.LevelProf, int64) {
	if c.prof == nil {
		return nil, 0
	}
	return c.prof.StartLevel(spec.phase, spec.level, len(spec.cands)), c.cells
}

// endLevel commits a level's kept count, cell delta, and wall time
// (no-op when lp is nil).
func (c *runCtl) endLevel(lp *obs.LevelProf, kept int, cells0 int64) {
	if lp == nil {
		return
	}
	lp.SetKept(kept)
	lp.AddCells(c.cells - cells0)
	lp.End()
}

// observePart attributes d and alloc to one phase of lp and feeds the
// phase histogram. Callers only reach it on the profiled path.
func observePart(lp *obs.LevelProf, phase string, d time.Duration, alloc int64) {
	lp.AddPart(phase, d, alloc)
	phaseSeconds.With(phase).Observe(d.Seconds())
}

// candgen runs one candidate-generation step, attributing its wall time
// and allocation to the candgen phase when profiling is on.
func (c *runCtl) candgen(fn func() []itemset.Set) []itemset.Set {
	if c.prof == nil {
		return fn()
	}
	a0 := obs.AllocBytes()
	t0 := time.Now()
	out := fn()
	d := time.Since(t0)
	c.prof.AddPhase(obs.PhaseCandgen, d, obs.AllocBytes()-a0, 0)
	phaseSeconds.With(obs.PhaseCandgen).Observe(d.Seconds())
	return out
}

// shardStat renders one shard's arena into the profile's JSON shape; cost
// is the scheduler's estimate for the shard in word-operations.
func shardStat(worker int, dur time.Duration, cost int64, sp *counting.ShardProf) obs.ShardStat {
	return obs.ShardStat{
		Worker:       worker,
		Sets:         int(sp.Sets.Load()),
		Cells:        sp.Cells.Load(),
		Cost:         cost,
		Seconds:      dur.Seconds(),
		CacheHits:    sp.CacheHits.Load(),
		CacheMisses:  sp.CacheMisses.Load(),
		CacheSeconds: time.Duration(sp.CacheNanos.Load()).Seconds(),
	}
}
