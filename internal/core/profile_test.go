package core

import (
	"math/rand"
	"sync"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/counting"
	"ccs/internal/obs"
)

// profiledMine runs one BMS++ mine with a fresh profile at the given
// worker count and returns the record plus the result.
func profiledMine(t testing.TB, workers int) (*obs.ProfileRecord, *Result) {
	t.Helper()
	db := corrDB(rand.New(rand.NewSource(9)), 24, 3000)
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 20))
	cc := counting.NewCachedBitmapCounter(db, counting.DefaultCacheBytes)
	defer cc.ReleaseCache()
	prof := obs.NewProfile("bms++")
	m, err := New(db, testParams(), WithCounter(cc), WithWorkers(workers), WithProfile(prof))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.BMSPlusPlus(q, PlusPlusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return prof.Record(), res
}

// TestProfileDeterministicAcrossWorkers is the determinism check: a
// workers=1 and a workers=8 profile of the same query must agree on
// everything the lattice determines — candidates, kept sets, cells charged,
// level structure — even though the timing attribution differs.
func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	rec1, res1 := profiledMine(t, 1)
	rec8, res8 := profiledMine(t, 8)

	if !sameSets(res1.Answers, res8.Answers) {
		t.Fatalf("answers differ across worker counts")
	}
	if rec1.Candidates != rec8.Candidates {
		t.Errorf("candidates: workers=1 %d, workers=8 %d", rec1.Candidates, rec8.Candidates)
	}
	if rec1.Kept != rec8.Kept {
		t.Errorf("kept: workers=1 %d, workers=8 %d", rec1.Kept, rec8.Kept)
	}
	if rec1.Cells != rec8.Cells {
		t.Errorf("cells: workers=1 %d, workers=8 %d", rec1.Cells, rec8.Cells)
	}
	if len(rec1.Levels) != len(rec8.Levels) {
		t.Fatalf("level count: workers=1 %d, workers=8 %d", len(rec1.Levels), len(rec8.Levels))
	}
	for i := range rec1.Levels {
		a, b := rec1.Levels[i], rec8.Levels[i]
		if a.Phase != b.Phase || a.Level != b.Level || a.Candidates != b.Candidates || a.Kept != b.Kept || a.Cells != b.Cells {
			t.Errorf("level %d disagrees: serial %+v parallel %+v", i, a, b)
		}
	}
	// the shard detail must cover the same counting work in both runs
	cellsOf := func(rec *obs.ProfileRecord) (total int64) {
		for _, lv := range rec.Levels {
			for _, sh := range lv.Shards {
				total += sh.Cells
			}
		}
		return
	}
	if c1, c8 := cellsOf(rec1), cellsOf(rec8); c1 != c8 {
		t.Errorf("shard cells: workers=1 %d, workers=8 %d", c1, c8)
	}
	if rec1.Workers != 1 || rec8.Workers != 8 {
		t.Errorf("recorded workers = %d / %d, want 1 / 8", rec1.Workers, rec8.Workers)
	}
}

// TestProfilePhaseCoverage checks the profiler accounts for the run: the
// named phases plus the residual equal the wall clock, and the parallel
// run's shard stats carry real work.
func TestProfilePhaseCoverage(t *testing.T) {
	rec, _ := profiledMine(t, 8)
	if rec.WallSeconds <= 0 {
		t.Fatalf("wall = %g", rec.WallSeconds)
	}
	var sum float64
	for _, ph := range rec.Phases {
		sum += ph.Seconds
	}
	// Record() computes "other" as the exact residual, so the sum may only
	// undershoot when clocks overlap; allow 1% either way.
	if sum < rec.WallSeconds*0.99 || sum > rec.WallSeconds*1.01 {
		t.Errorf("phases sum to %g, wall is %g", sum, rec.WallSeconds)
	}
	if _, ok := rec.Phases[obs.PhaseCandgen]; !ok {
		t.Error("no candgen phase recorded")
	}
	if rec.Shards == 0 || rec.CountWorkSeconds <= 0 {
		t.Errorf("no shard work recorded: shards=%d work=%g", rec.Shards, rec.CountWorkSeconds)
	}
	var busy float64
	for _, b := range rec.WorkerBusySeconds {
		busy += b
	}
	// worker busy-seconds and per-shard seconds are two views of the same
	// counting work
	if busy <= 0 {
		t.Fatalf("no worker busy time: %v", rec.WorkerBusySeconds)
	}
	if diff := busy - rec.CountWorkSeconds; diff < -0.001 || diff > 0.001 {
		t.Errorf("worker busy %gs vs shard work %gs", busy, rec.CountWorkSeconds)
	}
}

// TestProfiledMinesConcurrent is the race hammer: 8 goroutines run
// profiled parallel mines at once (each mine itself fans out workers), so
// the -race suite sees the profiler's shared state under real contention.
func TestProfiledMinesConcurrent(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(10)), 20, 1500)
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 20))
	var wg sync.WaitGroup
	recs := make([]*obs.ProfileRecord, 8)
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prof := obs.NewProfile("bms++")
			m, err := New(db, testParams(), WithWorkers(4), WithProfile(prof))
			if err != nil {
				errs[g] = err
				return
			}
			if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
				errs[g] = err
				return
			}
			recs[g] = prof.Record()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("mine %d: %v", g, err)
		}
	}
	// every profile is independent, so they all see the same lattice
	for g := 1; g < 8; g++ {
		if recs[g].Candidates != recs[0].Candidates || recs[g].Cells != recs[0].Cells {
			t.Errorf("mine %d profile disagrees: %d/%d vs %d/%d",
				g, recs[g].Candidates, recs[g].Cells, recs[0].Candidates, recs[0].Cells)
		}
	}
}

// TestProfileOffUnchanged checks mining without WithProfile yields the
// exact same answers and stats as a profiled run — the profiler observes,
// never steers.
func TestProfileOffUnchanged(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(9)), 24, 3000)
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 20))
	mine := func(opts ...Option) *Result {
		m, err := New(db, testParams(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.BMSPlusPlus(q, PlusPlusOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mine(WithWorkers(4))
	profiled := mine(WithWorkers(4), WithProfile(obs.NewProfile("bms++")))
	if !sameSets(plain.Answers, profiled.Answers) {
		t.Fatal("profiling changed the answers")
	}
	if plain.Stats.Candidates != profiled.Stats.Candidates ||
		plain.Stats.CellsCounted != profiled.Stats.CellsCounted ||
		plain.Stats.ChiSquaredTests != profiled.Stats.ChiSquaredTests {
		t.Fatalf("profiling changed the stats: %+v vs %+v", plain.Stats, profiled.Stats)
	}
}
