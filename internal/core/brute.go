package core

import (
	"fmt"

	"ccs/internal/constraint"
	"ccs/internal/itemset"
)

// BruteResult holds the exhaustive evaluation of the itemset lattice used
// to validate the level-wise algorithms.
type BruteResult struct {
	// Space is every itemset (2 <= |S| <= maxSize) that is correlated and
	// CT-supported.
	Space []itemset.Set
	// MinimalCorrelated is the minimal elements of Space — the answer set
	// of the unconstrained BMS algorithm.
	MinimalCorrelated []itemset.Set
	// ValidMin is VALIDMIN(Q): members of MinimalCorrelated satisfying Q.
	ValidMin []itemset.Set
	// MinValid is MINVALID(Q): minimal elements of the valid subset of
	// Space.
	MinValid []itemset.Set
}

// Brute enumerates every itemset of size 2..maxSize over the catalog,
// evaluates CT-support, correlation and the query directly from the
// definitions, and derives all the answer sets. It is exponential in the
// catalog size and exists to make the fast algorithms falsifiable; maxSize
// must keep the enumeration tractable (catalog of ~15 items or fewer).
func (m *Miner) Brute(q *constraint.Conjunction, maxSize int) (*BruteResult, error) {
	n := m.cat.Len()
	if n > 24 {
		return nil, fmt.Errorf("core: Brute over %d items is intractable", n)
	}
	if maxSize < 2 {
		return nil, fmt.Errorf("core: Brute maxSize %d below 2", maxSize)
	}
	if maxSize > m.res.maxLevel {
		maxSize = m.res.maxLevel
	}

	res := &BruteResult{}
	inSpace := itemset.NewRegistry()
	valid := itemset.NewRegistry()

	// enumerate by size so minimality checks can use what came before
	minCorr := itemset.NewRegistry()
	minValid := itemset.NewRegistry()
	for size := 2; size <= maxSize; size++ {
		var level []itemset.Set
		enumerateSets(n, size, func(s itemset.Set) {
			level = append(level, s.Clone())
		})
		tables, err := m.cnt.CountTables(level)
		if err != nil {
			return nil, err
		}
		for i, t := range tables {
			s := level[i]
			if !t.CTSupported(m.res.s, m.res.CTFraction) {
				continue
			}
			if t.ChiSquared() < m.res.cutoff {
				continue
			}
			res.Space = append(res.Space, s)
			isValid := q.Satisfies(m.cat, s)

			if !hasProperSubsetIn(inSpace, s) {
				res.MinimalCorrelated = append(res.MinimalCorrelated, s)
				if isValid {
					res.ValidMin = append(res.ValidMin, s)
				}
				minCorr.Add(s)
			}
			if isValid && !hasProperSubsetIn(valid, s) {
				res.MinValid = append(res.MinValid, s)
				minValid.Add(s)
			}

			inSpace.Add(s)
			if isValid {
				valid.Add(s)
			}
		}
	}
	itemset.SortSets(res.Space)
	itemset.SortSets(res.MinimalCorrelated)
	itemset.SortSets(res.ValidMin)
	itemset.SortSets(res.MinValid)
	return res, nil
}

// hasProperSubsetIn reports whether reg holds a proper subset of s. Because
// the enumeration is by increasing size, registry members are never
// supersets of s, so subset-of suffices minus the equality case (s is not
// yet registered when called).
func hasProperSubsetIn(reg *itemset.Registry, s itemset.Set) bool {
	return reg.ContainsSubsetOf(s)
}

// enumerateSets calls fn with every size-k subset of {0..n-1} in canonical
// order. The slice passed to fn is reused; clone to retain.
func enumerateSets(n, k int, fn func(itemset.Set)) {
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make(itemset.Set, k)
	for {
		for i, v := range idx {
			buf[i] = itemset.Item(v)
		}
		fn(buf)
		// advance combination
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
