package core

import (
	"context"
	"fmt"
	"time"

	"ccs/internal/constraint"
	"ccs/internal/itemset"
)

// BMSStar computes MINVALID(Q) naively (the paper's Figure F): run the
// unconstrained baseline, keep the valid minimal correlated sets, and grow
// the correlated-but-monotone-invalid ones upward level by level. The
// upward sweep re-checks CT-support and the anti-monotone constraints but
// skips the chi-squared test: a superset of a correlated set is correlated
// (upward closure of the statistic under table collapse).
func (m *Miner) BMSStar(q *constraint.Conjunction) (*Result, error) {
	return m.BMSStarContext(context.Background(), q)
}

// BMSStarContext is BMSStar honoring ctx and the Miner's Budget. On
// truncation — in the baseline or in the upward sweep — the answers found
// so far are returned with Result.Truncated set; every one of them is a
// genuine member of MINVALID(Q).
func (m *Miner) BMSStarContext(ctx context.Context, q *constraint.Conjunction) (*Result, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	if split.HasUnclassified() {
		return nil, fmt.Errorf("core: BMS* requires anti-monotone or monotone constraints; %d constraint(s) are neither", len(split.Other))
	}
	const algo = "bms*"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	out, err := m.runBaseline(ctl)
	if err != nil {
		return nil, err
	}
	stats := out.stats

	answers := itemset.NewRegistry()
	// Seeds for the upward sweep: minimal correlated sets that satisfy the
	// anti-monotone constraints but fail a monotone one. Sets failing an
	// anti-monotone constraint are discarded outright — no superset can be
	// valid.
	var seeds []itemset.Set
	for _, s := range out.sig {
		if !split.SatisfiesAM(m.cat, s) {
			continue
		}
		if split.SatisfiesM(m.cat, s) {
			answers.Add(s)
		} else {
			seeds = append(seeds, s)
		}
	}

	cause := out.cause
	if cause == nil {
		cause, err = m.sweepUp(ctl, &stats, split, seeds, answers)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Answers: answers.Sets(), Stats: stats}
	if cause != nil {
		truncate(res, cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}

// sweepUp grows the seed sets (correlated, CT-supported, AM-valid, not yet
// M-valid) upward one item at a time, adding each minimal valid superset to
// answers. A non-nil cause means the sweep was truncated at a level
// boundary. Invariants maintained per level:
//
//   - every examined set is a superset of a correlated set, hence
//     correlated; only CT-support and constraints are re-checked;
//   - a set containing an already-found answer cannot be minimal valid and
//     is dropped together with its supersets;
//   - a set failing an anti-monotone constraint is dropped likewise.
func (m *Miner) sweepUp(ctl *runCtl, stats *Stats, split *constraint.Split, seeds []itemset.Set, answers *itemset.Registry) (cause error, err error) {
	pool := m.frequentItems(split.AMMGF().Allowed)
	// group seeds by level so the sweep proceeds smallest-first
	byLevel := map[int][]itemset.Set{}
	maxSeed := 0
	for _, s := range seeds {
		byLevel[s.Size()] = append(byLevel[s.Size()], s)
		if s.Size() > maxSeed {
			maxSeed = s.Size()
		}
	}
	if len(seeds) == 0 {
		return nil, nil
	}
	minSeed := maxSeed
	for k := range byLevel {
		if k < minSeed {
			minSeed = k
		}
	}

	frontier := itemset.NewRegistry() // NOTSIG of the sweep: in-space, AM-valid, M-invalid
	var frontierLevel []itemset.Set
	for _, s := range byLevel[minSeed] {
		frontier.Add(s)
		frontierLevel = append(frontierLevel, s)
	}
	for level := minSeed; len(frontierLevel) > 0 || level < maxSeed; level++ {
		if level+1 > m.res.maxLevel {
			break
		}
		if cause := ctl.interrupted(stats); cause != nil {
			return cause, nil
		}
		stats.Levels++
		levelStart := time.Now()
		cands := extendAny(frontierLevel, pool)
		m.report("BMS*", "sweep", level+1, len(cands))
		// new seeds arriving at the next level join the frontier directly
		// (they are already known correlated and CT-supported)
		stats.Candidates += len(cands)

		// drop candidates that fail AM constraints or contain an answer
		kept := cands[:0]
		for _, c := range cands {
			if answers.ContainsSubsetOf(c) {
				continue
			}
			if !split.SatisfiesAMOther(m.cat, c) {
				stats.PrunedByAM++
				continue
			}
			kept = append(kept, c)
		}
		cands = kept

		tables, err := m.countBatchCtl(ctl, stats, cands)
		if err != nil {
			if cause := ctl.truncation(err); cause != nil {
				stats.endLevel(levelStart)
				return cause, nil
			}
			return nil, err
		}
		frontierLevel = frontierLevel[:0]
		for i, t := range tables {
			if !t.CTSupported(m.res.s, m.res.CTFraction) {
				continue
			}
			if split.SatisfiesM(m.cat, cands[i]) {
				answers.Add(cands[i])
			} else if frontier.Add(cands[i]) {
				frontierLevel = append(frontierLevel, cands[i])
			}
		}
		for _, s := range byLevel[level+1] {
			if !answers.ContainsSubsetOf(s) && frontier.Add(s) {
				frontierLevel = append(frontierLevel, s)
			}
		}
		stats.endLevel(levelStart)
	}
	return nil, nil
}

// extendAny returns the deduplicated one-item extensions of the bases — the
// upward sweep has no Apriori prune because its frontier is not
// subset-closed.
func extendAny(bases []itemset.Set, pool []itemset.Item) []itemset.Set {
	seen := itemset.NewRegistry()
	var out []itemset.Set
	for _, b := range bases {
		for _, x := range pool {
			if b.Contains(x) {
				continue
			}
			c := b.With(x)
			if seen.Add(c) {
				out = append(out, c)
			}
		}
	}
	itemset.SortSets(out)
	return out
}

// StarStarOptions configures BMSStarStar.
type StarStarOptions struct {
	// PushMonotoneSuccinct enables the L1+/L1- witness split of the
	// paper's Modification I for the single-witness case, pruning
	// unwitnessed candidates in phase 1. The answer set (MINVALID) is
	// unchanged; only the explored space shrinks.
	PushMonotoneSuccinct bool
}

// BMSStarStar computes MINVALID(Q) with the paper's two-phase strategy
// (Figure G): phase 1 grows the CT-supported, AM-valid candidate space to
// exhaustion without any chi-squared test; phase 2 sweeps the stored levels
// bottom-up applying the chi-squared test and monotone constraints, keeping
// the minimal valid sets. Its cost tracks the size of the valid supported
// space (Σ v_i in the paper's analysis), which is why it wins under
// selective constraints and loses badly under unselective ones.
func (m *Miner) BMSStarStar(q *constraint.Conjunction, opts StarStarOptions) (*Result, error) {
	return m.BMSStarStarContext(context.Background(), q, opts)
}

// BMSStarStarContext is BMSStarStar honoring ctx and the Miner's Budget.
// Truncation in phase 1 cuts the stored SUPP levels (phase 2 then sweeps
// what exists); truncation in phase 2 stops the sweep at a level boundary.
// Either way the partial answers are genuine MINVALID members from the
// completed levels.
func (m *Miner) BMSStarStarContext(ctx context.Context, q *constraint.Conjunction, opts StarStarOptions) (*Result, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	if split.HasUnclassified() {
		return nil, fmt.Errorf("core: BMS** requires anti-monotone or monotone constraints; %d constraint(s) are neither", len(split.Other))
	}

	const algo = "bms**"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	stats := Stats{}
	amAllowed := split.AMMGF().Allowed
	var witness constraint.ItemFilter
	if opts.PushMonotoneSuccinct {
		if ws := split.MMGF().Witnesses; len(ws) == 1 {
			witness = ws[0]
		}
	}

	l1 := m.frequentItems(amAllowed)
	var cands []itemset.Set
	var relevant func(itemset.Set) bool
	if witness != nil {
		var plus, minus []itemset.Item
		for _, i := range l1 {
			if witness(m.cat.Info(i)) {
				plus = append(plus, i)
			} else {
				minus = append(minus, i)
			}
		}
		cands = pairs(plus, minus)
		inPlus := make(map[itemset.Item]bool, len(plus))
		for _, i := range plus {
			inPlus[i] = true
		}
		relevant = func(s itemset.Set) bool {
			for _, i := range s {
				if inPlus[i] {
					return true
				}
			}
			return false
		}
	} else {
		cands = pairs(l1, nil)
	}
	stats.Candidates += len(cands)

	// Phase 1: SUPP levels — CT-supported and AM-valid, no chi-squared.
	type suppLevel struct {
		sets   []itemset.Set
		tables []int // index into allTables
	}
	var levels []suppLevel
	var allTables []*tableEntry
	var cause error
	supp := itemset.NewRegistry()
	for level := 2; len(cands) > 0 && level <= m.res.maxLevel; level++ {
		if cause = ctl.interrupted(&stats); cause != nil {
			break
		}
		stats.Levels++
		levelStart := time.Now()
		m.report("BMS**", "supp", level, len(cands))
		kept := cands[:0]
		for _, c := range cands {
			if split.SatisfiesAMOther(m.cat, c) {
				kept = append(kept, c)
			} else {
				stats.PrunedByAM++
			}
		}
		cands = kept
		tables, err := m.countBatchCtl(ctl, &stats, cands)
		if err != nil {
			if cause = ctl.truncation(err); cause != nil {
				stats.endLevel(levelStart)
				break
			}
			return nil, err
		}
		var lv suppLevel
		for i, t := range tables {
			if !t.CTSupported(m.res.s, m.res.CTFraction) {
				continue
			}
			supp.Add(cands[i])
			lv.sets = append(lv.sets, cands[i])
			allTables = append(allTables, &tableEntry{set: cands[i], chi: t.ChiSquared()})
			lv.tables = append(lv.tables, len(allTables)-1)
		}
		levels = append(levels, lv)
		cands = extend(lv.sets, l1, relevant, supp)
		stats.Candidates += len(cands)
		stats.endLevel(levelStart)
	}

	// Phase 2: bottom-up chi-squared + monotone sweep over the SUPP
	// levels. NOTSIG holds supported sets that are not yet answers; a
	// set is examined only if its relevant subsets are all in NOTSIG.
	notsig := itemset.NewRegistry()
	var answers []itemset.Set
	for li, lv := range levels {
		if cause == nil {
			if cause = ctl.interrupted(&stats); cause != nil {
				break
			}
		}
		m.report("BMS**", "chi", li+2, len(lv.sets))
		for i, s := range lv.sets {
			if li > 0 { // level-2 sets (li == 0) are always examined
				ok := true
				s.Subsets1(func(sub itemset.Set) bool {
					if relevant != nil && !relevant(sub) {
						return true
					}
					if !notsig.Has(sub) {
						ok = false
						return false
					}
					return true
				})
				if !ok {
					continue
				}
			}
			entry := allTables[lv.tables[i]]
			stats.ChiSquaredTests++
			if entry.chi >= m.res.cutoff && split.SatisfiesM(m.cat, s) {
				answers = append(answers, s)
			} else {
				notsig.Add(s)
			}
		}
	}
	itemset.SortSets(answers)
	res := &Result{Answers: answers, Stats: stats}
	if cause != nil {
		truncate(res, cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}

// tableEntry caches the statistic of a phase-1 table so phase 2 does not
// recount the database.
type tableEntry struct {
	set itemset.Set
	chi float64
}
