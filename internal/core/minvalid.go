package core

import (
	"context"
	"fmt"
	"time"

	"ccs/internal/constraint"
	"ccs/internal/contingency"
	"ccs/internal/itemset"
	"ccs/internal/obs"
)

// BMSStar computes MINVALID(Q) naively (the paper's Figure F): run the
// unconstrained baseline, keep the valid minimal correlated sets, and grow
// the correlated-but-monotone-invalid ones upward level by level. The
// upward sweep re-checks CT-support and the anti-monotone constraints but
// skips the chi-squared test: a superset of a correlated set is correlated
// (upward closure of the statistic under table collapse).
func (m *Miner) BMSStar(q *constraint.Conjunction) (*Result, error) {
	return m.BMSStarContext(context.Background(), q)
}

// BMSStarContext is BMSStar honoring ctx and the Miner's Budget. On
// truncation — in the baseline or in the upward sweep — the answers found
// so far are returned with Result.Truncated set; every one of them is a
// genuine member of MINVALID(Q).
func (m *Miner) BMSStarContext(ctx context.Context, q *constraint.Conjunction) (*Result, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	if split.HasUnclassified() {
		return nil, fmt.Errorf("core: BMS* requires anti-monotone or monotone constraints; %d constraint(s) are neither", len(split.Other))
	}
	const algo = "bms*"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	out, err := m.runBaseline(ctl, algo)
	if err != nil {
		return nil, err
	}
	stats := out.stats

	answers := itemset.NewRegistry()
	// Seeds for the upward sweep: minimal correlated sets that satisfy the
	// anti-monotone constraints but fail a monotone one. Sets failing an
	// anti-monotone constraint are discarded outright — no superset can be
	// valid.
	var seeds []itemset.Set
	for _, s := range out.sig {
		if !split.SatisfiesAM(m.cat, s) {
			continue
		}
		if split.SatisfiesM(m.cat, s) {
			answers.Add(s)
		} else {
			seeds = append(seeds, s)
		}
	}

	cause := out.cause
	if cause == nil {
		cause, err = m.sweepUp(ctl, &stats, split, seeds, answers)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Answers: answers.Sets(), Stats: stats}
	if cause != nil {
		truncate(res, cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}

// sweepUp grows the seed sets (correlated, CT-supported, AM-valid, not yet
// M-valid) upward one item at a time, adding each minimal valid superset to
// answers. A non-nil cause means the sweep was truncated at a level
// boundary. Invariants maintained per level:
//
//   - every examined set is a superset of a correlated set, hence
//     correlated; only CT-support and constraints are re-checked;
//   - a set containing an already-found answer cannot be minimal valid and
//     is dropped together with its supersets;
//   - a set failing an anti-monotone constraint is dropped likewise.
func (m *Miner) sweepUp(ctl *runCtl, stats *Stats, split *constraint.Split, seeds []itemset.Set, answers *itemset.Registry) (cause error, err error) {
	pool := m.frequentItems(split.AMMGF().Allowed)
	// group seeds by level so the sweep proceeds smallest-first
	byLevel := map[int][]itemset.Set{}
	maxSeed := 0
	for _, s := range seeds {
		byLevel[s.Size()] = append(byLevel[s.Size()], s)
		if s.Size() > maxSeed {
			maxSeed = s.Size()
		}
	}
	if len(seeds) == 0 {
		return nil, nil
	}
	minSeed := maxSeed
	for k := range byLevel {
		if k < minSeed {
			minSeed = k
		}
	}

	frontier := itemset.NewRegistry() // NOTSIG of the sweep: in-space, AM-valid, M-invalid
	var frontierLevel []itemset.Set
	for _, s := range byLevel[minSeed] {
		frontier.Add(s)
		frontierLevel = append(frontierLevel, s)
	}
	for level := minSeed; len(frontierLevel) > 0 || level < maxSeed; level++ {
		if level+1 > m.res.maxLevel {
			break
		}
		if cause := ctl.interrupted(stats); cause != nil {
			return cause, nil
		}
		stats.Levels++
		levelStart := time.Now()
		cands := ctl.candgen(func() []itemset.Set { return extendAny(frontierLevel, pool) })
		m.report("BMS*", "sweep", level+1, len(cands))
		// new seeds arriving at the next level join the frontier directly
		// (they are already known correlated and CT-supported)
		stats.Candidates += len(cands)

		var answersLevel, frontierNew []itemset.Set
		err := m.runLevel(ctl, stats, levelSpec{
			algo:  "bms*",
			phase: "sweep",
			level: level + 1,
			cands: cands,
			// drop candidates that fail AM constraints or contain an answer
			// (answers is read-only until the level commits, so the check is
			// safe to run concurrently)
			pre: func(c itemset.Set) shardVerdict {
				if answers.ContainsSubsetOf(c) {
					return dropSet
				}
				if !split.SatisfiesAMOther(m.cat, c) {
					return dropSetAM
				}
				return keepSet
			},
			eval: func(s itemset.Set, t *contingency.Table) {
				if !t.CTSupported(m.res.s, m.res.CTFraction) {
					return
				}
				if split.SatisfiesM(m.cat, s) {
					answersLevel = append(answersLevel, s)
				} else {
					frontierNew = append(frontierNew, s)
				}
			},
		})
		if err != nil {
			if cause := ctl.truncation(err); cause != nil {
				stats.endLevel(levelStart)
				return cause, nil
			}
			return nil, err
		}
		for _, s := range answersLevel {
			answers.Add(s)
		}
		frontierLevel = frontierLevel[:0]
		for _, s := range frontierNew {
			if frontier.Add(s) {
				frontierLevel = append(frontierLevel, s)
			}
		}
		for _, s := range byLevel[level+1] {
			if !answers.ContainsSubsetOf(s) && frontier.Add(s) {
				frontierLevel = append(frontierLevel, s)
			}
		}
		stats.endLevel(levelStart)
	}
	return nil, nil
}

// extendAny returns the deduplicated one-item extensions of the bases — the
// upward sweep has no Apriori prune because its frontier is not
// subset-closed. The output is pre-sized to the worst case (every pool item
// extends every base) and base membership is tested against a bitmask over
// item IDs instead of a per-item binary search.
func extendAny(bases []itemset.Set, pool []itemset.Item) []itemset.Set {
	if len(bases) == 0 || len(pool) == 0 {
		return nil
	}
	maxID := pool[len(pool)-1] // pool is ascending (frequentItems)
	for _, b := range bases {
		if last := b[len(b)-1]; last > maxID {
			maxID = last
		}
	}
	inBase := make([]uint64, int(maxID)/64+1)
	seen := itemset.NewRegistry()
	out := make([]itemset.Set, 0, len(bases)*len(pool))
	for _, b := range bases {
		for _, x := range b {
			inBase[x>>6] |= 1 << (x & 63)
		}
		for _, x := range pool {
			if inBase[x>>6]&(1<<(x&63)) != 0 {
				continue
			}
			c := b.With(x)
			if seen.Add(c) {
				out = append(out, c)
			}
		}
		for _, x := range b {
			inBase[x>>6] &^= 1 << (x & 63)
		}
	}
	itemset.SortSets(out)
	return out
}

// StarStarOptions configures BMSStarStar.
type StarStarOptions struct {
	// PushMonotoneSuccinct enables the L1+/L1- witness split of the
	// paper's Modification I for the single-witness case, pruning
	// unwitnessed candidates in phase 1. The answer set (MINVALID) is
	// unchanged; only the explored space shrinks.
	PushMonotoneSuccinct bool
}

// BMSStarStar computes MINVALID(Q) with the paper's two-phase strategy
// (Figure G): phase 1 grows the CT-supported, AM-valid candidate space to
// exhaustion without any chi-squared test; phase 2 sweeps the stored levels
// bottom-up applying the chi-squared test and monotone constraints, keeping
// the minimal valid sets. Its cost tracks the size of the valid supported
// space (Σ v_i in the paper's analysis), which is why it wins under
// selective constraints and loses badly under unselective ones.
func (m *Miner) BMSStarStar(q *constraint.Conjunction, opts StarStarOptions) (*Result, error) {
	return m.BMSStarStarContext(context.Background(), q, opts)
}

// BMSStarStarContext is BMSStarStar honoring ctx and the Miner's Budget.
// Truncation in phase 1 cuts the stored SUPP levels (phase 2 then sweeps
// what exists); truncation in phase 2 stops the sweep at a level boundary.
// Either way the partial answers are genuine MINVALID members from the
// completed levels.
func (m *Miner) BMSStarStarContext(ctx context.Context, q *constraint.Conjunction, opts StarStarOptions) (*Result, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	if split.HasUnclassified() {
		return nil, fmt.Errorf("core: BMS** requires anti-monotone or monotone constraints; %d constraint(s) are neither", len(split.Other))
	}

	const algo = "bms**"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	stats := Stats{}
	amAllowed := split.AMMGF().Allowed
	var witness constraint.ItemFilter
	if opts.PushMonotoneSuccinct {
		if ws := split.MMGF().Witnesses; len(ws) == 1 {
			witness = ws[0]
		}
	}

	l1 := m.frequentItems(amAllowed)
	var cands []itemset.Set
	var relevant func(itemset.Set) bool
	if witness != nil {
		var plus, minus []itemset.Item
		for _, i := range l1 {
			if witness(m.cat.Info(i)) {
				plus = append(plus, i)
			} else {
				minus = append(minus, i)
			}
		}
		cands = ctl.candgen(func() []itemset.Set { return pairs(plus, minus) })
		inPlus := make(map[itemset.Item]bool, len(plus))
		for _, i := range plus {
			inPlus[i] = true
		}
		relevant = func(s itemset.Set) bool {
			for _, i := range s {
				if inPlus[i] {
					return true
				}
			}
			return false
		}
	} else {
		cands = ctl.candgen(func() []itemset.Set { return pairs(l1, nil) })
	}
	stats.Candidates += len(cands)

	// Phase 1: SUPP levels — CT-supported and AM-valid, no chi-squared.
	type suppLevel struct {
		sets   []itemset.Set
		tables []int // index into allTables
	}
	var levels []suppLevel
	var allTables []*tableEntry
	var cause error
	supp := itemset.NewRegistry()
	for level := 2; len(cands) > 0 && level <= m.res.maxLevel; level++ {
		if cause = ctl.interrupted(&stats); cause != nil {
			break
		}
		stats.Levels++
		levelStart := time.Now()
		m.report("BMS**", "supp", level, len(cands))
		// The chi-squared statistic is computed here, while the table is
		// hot, but buffered with the level's sets and only entered into the
		// SUPP store once the level commits.
		var lvSets []itemset.Set
		var lvChis []float64
		err := m.runLevel(ctl, &stats, levelSpec{
			algo:  algo,
			phase: "supp",
			level: level,
			cands: cands,
			pre: func(c itemset.Set) shardVerdict {
				if split.SatisfiesAMOther(m.cat, c) {
					return keepSet
				}
				return dropSetAM
			},
			eval: func(s itemset.Set, t *contingency.Table) {
				if !t.CTSupported(m.res.s, m.res.CTFraction) {
					return
				}
				lvSets = append(lvSets, s)
				lvChis = append(lvChis, t.ChiSquared())
			},
		})
		if err != nil {
			if cause = ctl.truncation(err); cause != nil {
				stats.endLevel(levelStart)
				break
			}
			return nil, err
		}
		lv := suppLevel{sets: lvSets}
		for i, s := range lvSets {
			supp.Add(s)
			allTables = append(allTables, &tableEntry{set: s, chi: lvChis[i]})
			lv.tables = append(lv.tables, len(allTables)-1)
		}
		levels = append(levels, lv)
		cands = ctl.candgen(func() []itemset.Set { return extend(lv.sets, l1, relevant, supp) })
		stats.Candidates += len(cands)
		stats.endLevel(levelStart)
	}

	// Phase 2: bottom-up chi-squared + monotone sweep over the SUPP
	// levels. NOTSIG holds supported sets that are not yet answers; a
	// set is examined only if its relevant subsets are all in NOTSIG.
	notsig := itemset.NewRegistry()
	var answers []itemset.Set
	for li, lv := range levels {
		if cause == nil {
			if cause = ctl.interrupted(&stats); cause != nil {
				break
			}
		}
		m.report("BMS**", "chi", li+2, len(lv.sets))
		// Phase 2 never recounts, so its levels profile as pure evaluation.
		lp := ctl.prof.StartLevel("chi", li+2, len(lv.sets))
		var chiStart time.Time
		if lp != nil {
			chiStart = time.Now()
		}
		for i, s := range lv.sets {
			if li > 0 { // level-2 sets (li == 0) are always examined
				ok := true
				s.Subsets1(func(sub itemset.Set) bool {
					if relevant != nil && !relevant(sub) {
						return true
					}
					if !notsig.Has(sub) {
						ok = false
						return false
					}
					return true
				})
				if !ok {
					continue
				}
			}
			entry := allTables[lv.tables[i]]
			stats.ChiSquaredTests++
			if entry.chi >= m.res.cutoff && split.SatisfiesM(m.cat, s) {
				answers = append(answers, s)
			} else {
				notsig.Add(s)
			}
		}
		if lp != nil {
			observePart(lp, obs.PhaseEval, time.Since(chiStart), 0)
			lp.SetKept(len(lv.sets))
			lp.End()
		}
	}
	itemset.SortSets(answers)
	res := &Result{Answers: answers, Stats: stats}
	if cause != nil {
		truncate(res, cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}

// tableEntry caches the statistic of a phase-1 table so phase 2 does not
// recount the database.
type tableEntry struct {
	set itemset.Set
	chi float64
}
