package core

import (
	"math/rand"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/counting"
	"ccs/internal/dataset"
	"ccs/internal/itemset"
)

// corrDB builds a database over nItems items with planted structure: each
// transaction draws items independently with probability 1/3, then item 1
// copies item 0 with probability 0.9 (strong pairwise correlation), and a
// random subset of noise. The result reliably contains correlated pairs
// while remaining small enough for Brute.
func corrDB(r *rand.Rand, nItems, nTx int) *dataset.DB {
	cat := dataset.SyntheticCatalog(nItems, []string{"soda", "snack", "frozen"})
	tx := make([]dataset.Transaction, nTx)
	for i := range tx {
		var items []itemset.Item
		for j := 0; j < nItems; j++ {
			if r.Intn(3) == 0 {
				items = append(items, itemset.Item(j))
			}
		}
		s := itemset.New(items...)
		// plant: item 1 follows item 0
		if s.Contains(0) && r.Intn(10) != 0 {
			s = s.With(1)
		}
		// plant a weaker 3-way dependency among 2,3,4
		if nItems > 4 && s.Contains(2) && s.Contains(3) && r.Intn(4) != 0 {
			s = s.With(4)
		}
		tx[i] = s
	}
	db, err := dataset.NewDB(cat, tx)
	if err != nil {
		panic(err)
	}
	return db
}

func testParams() Params {
	return Params{Alpha: 0.9, CellSupportFrac: 0.05, CTFraction: 0.25, MaxLevel: 5}
}

func newMiner(t testing.TB, db *dataset.DB) *Miner {
	t.Helper()
	m, err := New(db, testParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sameSets(a, b []itemset.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func setsString(ss []itemset.Set) string {
	out := "["
	for i, s := range ss {
		if i > 0 {
			out += " "
		}
		out += s.String()
	}
	return out + "]"
}

// queryPool returns a diverse set of classified conjunctions keyed by name.
func queryPool() map[string]*constraint.Conjunction {
	return map[string]*constraint.Conjunction{
		"empty":        constraint.And(),
		"maxLE":        constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 5)),
		"maxLE-tight":  constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 2)),
		"sumLE":        constraint.And(constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, 7)),
		"minLE":        constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 2)),
		"minLE-tight":  constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 1)),
		"sumGE":        constraint.And(constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.GE, 6)),
		"maxGE":        constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.GE, 4)),
		"disjoint":     constraint.And(constraint.NewDomain(constraint.OpDisjoint, constraint.Type, "frozen")),
		"intersects":   constraint.And(constraint.NewDomain(constraint.OpIntersects, constraint.Type, "soda")),
		"containsall":  constraint.And(constraint.NewDomain(constraint.OpContainsAll, constraint.Type, "soda", "snack")),
		"am-mix":       constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 5), constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, 9)),
		"mixed":        constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 6), constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 2), constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, 12)),
		"mono-nonsucc": constraint.And(constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.GE, 5), constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 6)),
	}
}

func TestParamsValidation(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(1)), 4, 50)
	bad := []Params{
		{Alpha: 0, CellSupport: 1, CTFraction: 0.25},
		{Alpha: 1, CellSupport: 1, CTFraction: 0.25},
		{Alpha: 0.9, CellSupport: 0, CellSupportFrac: 0, CTFraction: 0.25},
		{Alpha: 0.9, CellSupport: -2, CTFraction: 0.25},
		{Alpha: 0.9, CellSupport: 1, CTFraction: -0.1},
		{Alpha: 0.9, CellSupport: 1, CTFraction: 1.5},
		{Alpha: 0.9, CellSupport: 1, CTFraction: 0.25, MaxLevel: 1},
		{Alpha: 0.9, CellSupportFrac: 2.0, CTFraction: 0.25},
	}
	for i, p := range bad {
		if _, err := New(db, p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	good := Params{Alpha: 0.95, CellSupportFrac: 0.1, CTFraction: 0.5}
	m, err := New(db, good)
	if err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	if m.CellSupport() != 5 {
		t.Errorf("resolved s = %d, want 5", m.CellSupport())
	}
	if m.Cutoff() < 3.84 || m.Cutoff() > 3.85 {
		t.Errorf("cutoff = %g", m.Cutoff())
	}
}

func TestCellSupportFloor(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(1)), 4, 3)
	m, err := New(db, Params{Alpha: 0.9, CellSupportFrac: 0.01, CTFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if m.CellSupport() != 1 {
		t.Errorf("s = %d, want floor of 1", m.CellSupport())
	}
}

func TestBMSFindsPlantedCorrelation(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(42)), 6, 400)
	m := newMiner(t, db)
	res, err := m.BMS()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Answers {
		if s.Equal(itemset.New(0, 1)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted pair {0,1} not mined; answers = %s", setsString(res.Answers))
	}
	if res.Stats.SetsConsidered == 0 || res.Stats.ChiSquaredTests == 0 || res.Stats.DBScans == 0 {
		t.Fatalf("stats not recorded: %+v", res.Stats)
	}
}

func TestBMSMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		res, err := m.BMS()
		if err != nil {
			t.Fatal(err)
		}
		brute, err := m.Brute(constraint.And(), 5)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSets(res.Answers, brute.MinimalCorrelated) {
			t.Fatalf("seed %d: BMS = %s, brute = %s", seed,
				setsString(res.Answers), setsString(brute.MinimalCorrelated))
		}
	}
}

func TestBMSPlusMatchesBruteValidMin(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			res, err := m.BMSPlus(q)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := m.Brute(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSets(res.Answers, brute.ValidMin) {
				t.Fatalf("seed %d query %s: BMS+ = %s, brute VALIDMIN = %s",
					seed, name, setsString(res.Answers), setsString(brute.ValidMin))
			}
		}
	}
}

func TestBMSPlusPlusExactMatchesBruteValidMin(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			res, err := m.BMSPlusPlus(q, PlusPlusOptions{})
			if err != nil {
				t.Fatal(err)
			}
			brute, err := m.Brute(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSets(res.Answers, brute.ValidMin) {
				t.Fatalf("seed %d query %s: BMS++ = %s, brute VALIDMIN = %s",
					seed, name, setsString(res.Answers), setsString(brute.ValidMin))
			}
		}
	}
}

func TestBMSStarMatchesBruteMinValid(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			res, err := m.BMSStar(q)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := m.Brute(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSets(res.Answers, brute.MinValid) {
				t.Fatalf("seed %d query %s: BMS* = %s, brute MINVALID = %s",
					seed, name, setsString(res.Answers), setsString(brute.MinValid))
			}
		}
	}
}

func TestBMSStarStarMatchesBruteMinValid(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			for _, push := range []bool{false, true} {
				res, err := m.BMSStarStar(q, StarStarOptions{PushMonotoneSuccinct: push})
				if err != nil {
					t.Fatal(err)
				}
				brute, err := m.Brute(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !sameSets(res.Answers, brute.MinValid) {
					t.Fatalf("seed %d query %s push=%v: BMS** = %s, brute MINVALID = %s",
						seed, name, push, setsString(res.Answers), setsString(brute.MinValid))
				}
			}
		}
	}
}

func TestBMSPlusPlusPushComputesMinValid(t *testing.T) {
	// With the paper's witness push enabled and a single-witness monotone
	// succinct constraint, BMS++ computes MINVALID (see DESIGN.md).
	queries := map[string]*constraint.Conjunction{
		"minLE":      constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 2)),
		"intersects": constraint.And(constraint.NewDomain(constraint.OpIntersects, constraint.Type, "soda")),
		"minLE+am": constraint.And(
			constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 3),
			constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 6),
			constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, 12)),
	}
	for seed := int64(0); seed < 6; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queries {
			res, err := m.BMSPlusPlus(q, PlusPlusOptions{PushMonotoneSuccinct: true})
			if err != nil {
				t.Fatal(err)
			}
			brute, err := m.Brute(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSets(res.Answers, brute.MinValid) {
				t.Fatalf("seed %d query %s: BMS++(push) = %s, brute MINVALID = %s",
					seed, name, setsString(res.Answers), setsString(brute.MinValid))
			}
		}
	}
}

func TestTheorem1Inclusion(t *testing.T) {
	// VALIDMIN ⊆ MINVALID for every query; equality under pure-AM queries.
	for seed := int64(0); seed < 6; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			brute, err := m.Brute(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			mv := itemset.NewRegistry()
			for _, s := range brute.MinValid {
				mv.Add(s)
			}
			for _, s := range brute.ValidMin {
				if !mv.Has(s) {
					t.Fatalf("seed %d query %s: %v in VALIDMIN but not MINVALID", seed, name, s)
				}
			}
			split, err := q.Classify()
			if err != nil {
				t.Fatal(err)
			}
			if split.AllAntiMonotone() && !sameSets(brute.ValidMin, brute.MinValid) {
				t.Fatalf("seed %d query %s: pure-AM sets differ: %s vs %s",
					seed, name, setsString(brute.ValidMin), setsString(brute.MinValid))
			}
		}
	}
}

func TestWitnessPushChangesValidMin(t *testing.T) {
	// The counterexample of DESIGN.md: with a monotone constraint, the
	// paper's witness push can emit a set that is minimal only within the
	// valid space. Construct a database where {0,1} is correlated but
	// invalid, and {0,1,2} is correlated and valid.
	r := rand.New(rand.NewSource(5))
	cat := dataset.SyntheticCatalog(4, nil) // prices 1..4
	var tx []dataset.Transaction
	for i := 0; i < 300; i++ {
		var items []itemset.Item
		if r.Intn(2) == 0 {
			items = append(items, 0)
			if r.Intn(10) != 0 {
				items = append(items, 1) // 0 and 1 strongly correlated
			}
		} else if r.Intn(4) == 0 {
			items = append(items, 1)
		}
		if r.Intn(3) == 0 {
			items = append(items, 2)
		}
		if r.Intn(3) == 0 {
			items = append(items, 3)
		}
		tx = append(tx, itemset.New(items...))
	}
	db, err := dataset.NewDB(cat, tx)
	if err != nil {
		t.Fatal(err)
	}
	m := newMiner(t, db)
	// constraint: min(price) <= ... no — use max(price) >= 3: needs an item
	// priced >= 3, so {0,1} (prices 1,2) is invalid.
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.GE, 3))
	brute, err := m.Brute(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	// sanity: {0,1} must be correlated (in space) and invalid
	inSpace := false
	for _, s := range brute.Space {
		if s.Equal(itemset.New(0, 1)) {
			inSpace = true
		}
	}
	if !inSpace {
		t.Skip("planted correlation did not materialize; adjust seed")
	}
	if len(brute.MinValid) <= len(brute.ValidMin) {
		t.Logf("ValidMin = %s", setsString(brute.ValidMin))
		t.Logf("MinValid = %s", setsString(brute.MinValid))
		t.Fatalf("expected MINVALID to strictly contain VALIDMIN")
	}
	// exact-mode BMS++ returns VALIDMIN; push mode returns MINVALID —
	// demonstrably different on this instance.
	exact, err := m.BMSPlusPlus(q, PlusPlusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	push, err := m.BMSPlusPlus(q, PlusPlusOptions{PushMonotoneSuccinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(exact.Answers, brute.ValidMin) {
		t.Fatalf("exact BMS++ = %s, want VALIDMIN %s", setsString(exact.Answers), setsString(brute.ValidMin))
	}
	if !sameSets(push.Answers, brute.MinValid) {
		t.Fatalf("push BMS++ = %s, want MINVALID %s", setsString(push.Answers), setsString(brute.MinValid))
	}
	if sameSets(exact.Answers, push.Answers) {
		t.Fatalf("push did not change the answer set on the counterexample")
	}
}

func TestUnclassifiedConstraintRejected(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(1)), 5, 100)
	m := newMiner(t, db)
	avg := constraint.And(constraint.NewAggregate(constraint.AggAvg, constraint.Price, constraint.LE, 3))
	if _, err := m.BMSPlusPlus(avg, PlusPlusOptions{}); err == nil {
		t.Errorf("BMS++ accepted avg constraint")
	}
	if _, err := m.BMSStar(avg); err == nil {
		t.Errorf("BMS* accepted avg constraint")
	}
	if _, err := m.BMSStarStar(avg, StarStarOptions{}); err == nil {
		t.Errorf("BMS** accepted avg constraint")
	}
	// BMS+ post-filters, so it handles avg
	if _, err := m.BMSPlus(avg); err != nil {
		t.Errorf("BMS+ rejected avg constraint: %v", err)
	}
}

func TestBMSPlusHandlesAvgAgainstBrute(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(3)), 7, 150)
	m := newMiner(t, db)
	q := constraint.And(constraint.NewAggregate(constraint.AggAvg, constraint.Price, constraint.LE, 4))
	res, err := m.BMSPlus(q)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := m.Brute(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(res.Answers, brute.ValidMin) {
		t.Fatalf("BMS+ avg = %s, brute = %s", setsString(res.Answers), setsString(brute.ValidMin))
	}
}

func TestPlusPlusNeverConsidersMoreThanPlus(t *testing.T) {
	// |BMS++| <= |BMS+| (Section 3.3).
	for seed := int64(0); seed < 5; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 8, 200)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			plus, err := m.BMSPlus(q)
			if err != nil {
				t.Fatal(err)
			}
			pp, err := m.BMSPlusPlus(q, PlusPlusOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if pp.Stats.SetsConsidered > plus.Stats.SetsConsidered {
				t.Fatalf("seed %d query %s: BMS++ considered %d > BMS+ %d",
					seed, name, pp.Stats.SetsConsidered, plus.Stats.SetsConsidered)
			}
		}
	}
}

func TestMaxLevelBoundsSearch(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(2)), 8, 200)
	p := testParams()
	p.MaxLevel = 2
	m, err := New(db, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.BMS()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Answers {
		if s.Size() > 2 {
			t.Fatalf("answer %v exceeds MaxLevel", s)
		}
	}
	if res.Stats.Levels > 1 {
		t.Fatalf("visited %d levels with MaxLevel=2", res.Stats.Levels)
	}
}

func TestBruteValidation(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(1)), 5, 60)
	m := newMiner(t, db)
	if _, err := m.Brute(constraint.And(), 1); err == nil {
		t.Errorf("maxSize 1 accepted")
	}
	big := dataset.SyntheticCatalog(30, nil)
	bigDB, _ := dataset.NewDB(big, []dataset.Transaction{itemset.New(0, 1)})
	bm, err := New(bigDB, Params{Alpha: 0.9, CellSupport: 1, CTFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bm.Brute(constraint.And(), 3); err == nil {
		t.Errorf("intractable catalog accepted")
	}
}

func TestScanCounterProducesSameAnswers(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(9)), 7, 150)
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 5))
	m1 := newMiner(t, db)
	m2, err := New(db, testParams(), WithCounter(counting.NewScanCounter(db)))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m1.BMSPlusPlus(q, PlusPlusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.BMSPlusPlus(q, PlusPlusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(r1.Answers, r2.Answers) {
		t.Fatalf("counters disagree: %s vs %s", setsString(r1.Answers), setsString(r2.Answers))
	}
}

func TestEmptyDatabase(t *testing.T) {
	cat := dataset.SyntheticCatalog(4, nil)
	db, _ := dataset.NewDB(cat, nil)
	m, err := New(db, Params{Alpha: 0.9, CellSupport: 1, CTFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.BMS()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers on empty DB: %s", setsString(res.Answers))
	}
}

func TestEnumerateSets(t *testing.T) {
	var got []string
	enumerateSets(4, 2, func(s itemset.Set) { got = append(got, s.String()) })
	want := []string{"{0, 1}", "{0, 2}", "{0, 3}", "{1, 2}", "{1, 3}", "{2, 3}"}
	if len(got) != len(want) {
		t.Fatalf("enumerateSets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("enumerateSets = %v, want %v", got, want)
		}
	}
	n := 0
	enumerateSets(6, 3, func(itemset.Set) { n++ })
	if n != 20 {
		t.Fatalf("C(6,3) = %d, want 20", n)
	}
	enumerateSets(3, 4, func(itemset.Set) { t.Fatal("k > n should enumerate nothing") })
	enumerateSets(3, 0, func(itemset.Set) { t.Fatal("k = 0 should enumerate nothing") })
}
