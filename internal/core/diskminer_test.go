package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/counting"
	"ccs/internal/dataset"
)

// TestAllAlgorithmsOnDiskCounter runs every algorithm against the
// streaming disk counter and checks the answers match the in-memory run —
// the full bounded-memory pipeline end to end.
func TestAllAlgorithmsOnDiskCounter(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(12)), 7, 200)
	path := filepath.Join(t.TempDir(), "d.ccs")
	if err := dataset.WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	disk, err := counting.NewDiskScanCounter(path)
	if err != nil {
		t.Fatal(err)
	}
	mem := newMiner(t, db)
	md, err := New(db, testParams(), WithCounter(disk))
	if err != nil {
		t.Fatal(err)
	}
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 3))

	type pair struct {
		name string
		run  func(m *Miner) (*Result, error)
	}
	runs := []pair{
		{"BMS", func(m *Miner) (*Result, error) { return m.BMS() }},
		{"BMS+", func(m *Miner) (*Result, error) { return m.BMSPlus(q) }},
		{"BMS++", func(m *Miner) (*Result, error) { return m.BMSPlusPlus(q, PlusPlusOptions{}) }},
		{"BMS*", func(m *Miner) (*Result, error) { return m.BMSStar(q) }},
		{"BMS**", func(m *Miner) (*Result, error) { return m.BMSStarStar(q, StarStarOptions{}) }},
		{"AllValid", func(m *Miner) (*Result, error) { return m.AllValid(q) }},
	}
	for _, r := range runs {
		a, err := r.run(mem)
		if err != nil {
			t.Fatalf("%s in-memory: %v", r.name, err)
		}
		b, err := r.run(md)
		if err != nil {
			t.Fatalf("%s disk: %v", r.name, err)
		}
		if !sameSets(a.Answers, b.Answers) {
			t.Fatalf("%s: disk answers %s differ from memory %s",
				r.name, setsString(b.Answers), setsString(a.Answers))
		}
	}
}
