package core_test

import (
	"fmt"
	"log"
	"math/rand"

	"ccs/internal/constraint"
	"ccs/internal/core"
	"ccs/internal/dataset"
	"ccs/internal/itemset"
)

// buildExampleDB plants a strong correlation between items 0 and 1.
func buildExampleDB() *dataset.DB {
	cat := dataset.SyntheticCatalog(5, []string{"soda", "snack"})
	r := rand.New(rand.NewSource(1))
	var tx []dataset.Transaction
	for i := 0; i < 500; i++ {
		var items []itemset.Item
		if r.Intn(2) == 0 {
			items = append(items, 0)
			if r.Intn(10) < 9 {
				items = append(items, 1)
			}
		}
		for j := itemset.Item(2); j < 5; j++ {
			if r.Intn(3) == 0 {
				items = append(items, j)
			}
		}
		tx = append(tx, itemset.New(items...))
	}
	db, err := dataset.NewDB(cat, tx)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

// ExampleMiner_BMSPlusPlus mines valid minimal correlated sets under an
// anti-monotone price constraint.
func ExampleMiner_BMSPlusPlus() {
	db := buildExampleDB()
	m, err := core.New(db, core.Params{Alpha: 0.999, CellSupportFrac: 0.05, CTFraction: 0.25, MaxLevel: 4})
	if err != nil {
		log.Fatal(err)
	}
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 3))
	res, err := m.BMSPlusPlus(q, core.PlusPlusOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Answers {
		fmt.Println(s)
	}
	// Output:
	// {0, 1}
}

// ExampleMiner_Brute validates the fast algorithms against the exhaustive
// reference on a small catalog.
func ExampleMiner_Brute() {
	db := buildExampleDB()
	m, err := core.New(db, core.Params{Alpha: 0.999, CellSupportFrac: 0.05, CTFraction: 0.25, MaxLevel: 4})
	if err != nil {
		log.Fatal(err)
	}
	q := constraint.And()
	brute, err := m.Brute(q, 4)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := m.BMS()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(fast.Answers) == len(brute.MinimalCorrelated))
	// Output:
	// true
}
