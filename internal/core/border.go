package core

import (
	"context"
	"fmt"

	"ccs/internal/constraint"
	"ccs/internal/itemset"
)

// SpaceDescription characterizes the full solution space of a constrained
// correlation query by its two borders, answering the observation of the
// paper's Section 5 that "simply returning minimal answers does not
// completely cover all answers, unless we also know where the upper border
// is": an itemset S is a solution iff Lower has a subset of S and Upper has
// a superset of S.
type SpaceDescription struct {
	// Lower is MINVALID(Q): the minimal solutions.
	Lower []itemset.Set
	// Upper is the maximal solutions: valid, correlated, CT-supported sets
	// none of whose valid CT-supported supersets remain in the space.
	Upper []itemset.Set
	// Stats records the work performed.
	Stats Stats
}

// Contains reports whether s lies in the described space.
func (d *SpaceDescription) Contains(s itemset.Set) bool {
	lower := false
	for _, l := range d.Lower {
		if s.ContainsAll(l) {
			lower = true
			break
		}
	}
	if !lower {
		return false
	}
	for _, u := range d.Upper {
		if u.ContainsAll(s) {
			return true
		}
	}
	return false
}

// SolutionSpace computes both borders of the query's solution space
// {S : S correlated, CT-supported, valid}. Each constraint must be
// anti-monotone or monotone, as for MINVALID: only then is the space a
// single region delimited from below by correlation and the monotone
// constraints and from above by CT-support and the anti-monotone
// constraints (Figure C of the paper).
//
// Strategy: a level-wise sweep collects every set that is CT-supported and
// AM-valid (the upper-closed predicates are inherited from subsets and
// checked directly); within that space the solutions are the sets that are
// also correlated and M-valid. The minimal ones form Lower; the sets with
// no solution superset at the next level form Upper.
func (m *Miner) SolutionSpace(q *constraint.Conjunction) (*SpaceDescription, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	if split.HasUnclassified() {
		return nil, fmt.Errorf("core: SolutionSpace requires anti-monotone or monotone constraints; %d constraint(s) are neither", len(split.Other))
	}

	ctl, release := m.newCtl(context.Background())
	defer release()
	desc := &SpaceDescription{}
	stats := &desc.Stats
	l1 := m.frequentItems(split.AMMGF().Allowed)
	cands := pairs(l1, nil)
	stats.Candidates += len(cands)

	supp := itemset.NewRegistry()      // CT-supported ∧ AM-valid, feeds candidate generation
	solutions := itemset.NewRegistry() // also correlated ∧ M-valid
	var prevSolutions []itemset.Set    // solutions at the previous level

	for level := 2; len(cands) > 0 && level <= m.res.maxLevel; level++ {
		stats.Levels++
		m.report("SolutionSpace", "levelwise", level, len(cands))
		kept := cands[:0]
		for _, c := range cands {
			if split.SatisfiesAMOther(m.cat, c) {
				kept = append(kept, c)
			} else {
				stats.PrunedByAM++
			}
		}
		cands = kept
		tables, err := m.countBatchCtl(ctl, stats, cands)
		if err != nil {
			return nil, err
		}
		var suppLevel, solLevel []itemset.Set
		covered := map[string]bool{}
		for i, t := range tables {
			if !t.CTSupported(m.res.s, m.res.CTFraction) {
				continue
			}
			supp.Add(cands[i])
			suppLevel = append(suppLevel, cands[i])
			if !m.correlated(stats, t) || !split.SatisfiesM(m.cat, cands[i]) {
				continue
			}
			s := cands[i]
			solLevel = append(solLevel, s)
			solutions.Add(s)
			// minimality: any solution subset disqualifies
			minimal := true
			s.ProperSubsets(func(sub itemset.Set) bool {
				if solutions.Has(sub) {
					minimal = false
					return false
				}
				return true
			})
			if minimal {
				desc.Lower = append(desc.Lower, s)
			}
			// mark the previous level's subsets as covered (non-maximal)
			s.Subsets1(func(sub itemset.Set) bool {
				if solutions.Has(sub) {
					covered[sub.Key()] = true
				}
				return true
			})
		}
		// previous-level solutions not covered by a solution at this level
		// are maximal (the space is convex along chains, so a solution
		// superset implies a direct one)
		for _, s := range prevSolutions {
			if !covered[s.Key()] {
				desc.Upper = append(desc.Upper, s)
			}
		}
		prevSolutions = solLevel
		cands = extend(suppLevel, l1, nil, supp)
		stats.Candidates += len(cands)
	}
	// the final level's solutions are maximal by termination
	desc.Upper = append(desc.Upper, prevSolutions...)
	itemset.SortSets(desc.Lower)
	itemset.SortSets(desc.Upper)
	return desc, nil
}
