package core

import (
	"math/rand"
	"testing"

	"ccs/internal/constraint"
)

func TestProgressEventsEmitted(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(3)), 7, 150)
	var events []ProgressEvent
	m, err := New(db, testParams(), WithProgress(func(e ProgressEvent) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 3))

	events = nil
	if _, err := m.BMS(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatalf("BMS emitted no progress")
	}
	if events[0].Algorithm != "BMS" || events[0].Phase != "levelwise" || events[0].Level != 2 {
		t.Fatalf("first event = %+v", events[0])
	}
	for i := 1; i < len(events); i++ {
		if events[i].Level != events[i-1].Level+1 {
			t.Fatalf("levels not consecutive: %+v", events)
		}
	}

	events = nil
	if _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Algorithm != "BMS++" {
		t.Fatalf("BMS++ events = %+v", events)
	}

	events = nil
	if _, err := m.BMSStar(q); err != nil {
		t.Fatal(err)
	}
	sawSweep := false
	for _, e := range events {
		if e.Algorithm == "BMS*" && e.Phase == "sweep" {
			sawSweep = true
		}
	}
	if !sawSweep {
		t.Fatalf("BMS* emitted no sweep events: %+v", events)
	}

	events = nil
	if _, err := m.BMSStarStar(q, StarStarOptions{}); err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	for _, e := range events {
		phases[e.Phase] = true
	}
	if !phases["supp"] || !phases["chi"] {
		t.Fatalf("BMS** phases = %v", phases)
	}
}

// TestProgressUnderParallelWorkers is the regression gate for -progress
// output with the sharded level engine: events must arrive exactly once
// per level, in monotone level order within each phase, regardless of how
// many workers count the level's shards. The engine guarantees this by
// keeping report() on the mining goroutine, before any shard is
// dispatched.
func TestProgressUnderParallelWorkers(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(5)), 12, 300)
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 5))
	for _, algo := range []string{"bms", "bms++", "bms*", "bms**", "all"} {
		t.Run(algo, func(t *testing.T) {
			var events []ProgressEvent
			m, err := New(db, testParams(), WithWorkers(8), WithProgress(func(e ProgressEvent) {
				events = append(events, e)
			}))
			if err != nil {
				t.Fatal(err)
			}
			switch algo {
			case "bms":
				_, err = m.BMS()
			case "bms++":
				_, err = m.BMSPlusPlus(q, PlusPlusOptions{})
			case "bms*":
				_, err = m.BMSStar(q)
			case "bms**":
				_, err = m.BMSStarStar(q, StarStarOptions{})
			case "all":
				_, err = m.AllValid(q)
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatal("no progress events")
			}
			seen := map[string]map[int]bool{} // phase -> levels reported
			lastLevel := map[string]int{}
			for _, e := range events {
				if seen[e.Phase] == nil {
					seen[e.Phase] = map[int]bool{}
				}
				if seen[e.Phase][e.Level] {
					t.Fatalf("level %d of phase %q reported twice: %+v", e.Level, e.Phase, events)
				}
				seen[e.Phase][e.Level] = true
				if last, ok := lastLevel[e.Phase]; ok && e.Level <= last {
					t.Fatalf("phase %q levels not monotone: %d after %d", e.Phase, e.Level, last)
				}
				lastLevel[e.Phase] = e.Level
			}
		})
	}
}

func TestNoProgressObserverIsSilent(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(3)), 6, 100)
	m, err := New(db, testParams())
	if err != nil {
		t.Fatal(err)
	}
	// must not panic without an observer
	if _, err := m.BMS(); err != nil {
		t.Fatal(err)
	}
}
