package core

import (
	"math/rand"
	"strings"
	"testing"

	"ccs/internal/constraint"
)

func adviseMiner(t *testing.T) *Miner {
	t.Helper()
	db := corrDB(rand.New(rand.NewSource(1)), 8, 100)
	return newMiner(t, db)
}

func TestAdvisePureAM(t *testing.T) {
	m := adviseMiner(t)
	q := constraint.And(
		constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 5),
		constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, 10),
	)
	a, err := m.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AllAntiMonotone || a.HasUnclassified {
		t.Fatalf("classification: %+v", a)
	}
	if a.ForValidMin != "BMSPlusPlus" || a.ForMinValid != "BMSPlusPlus" {
		t.Fatalf("recommendations: %s / %s", a.ForValidMin, a.ForMinValid)
	}
	if a.AMSuccinct != 1 || a.AMOther != 1 {
		t.Fatalf("buckets: %+v", a)
	}
}

func TestAdviseSelectiveMonotone(t *testing.T) {
	m := adviseMiner(t)
	// catalog prices 1..8; min(price) <= 1 passes only item 0 → 12.5%
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 1))
	a, err := m.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.ForMinValid != "BMSStarStar" {
		t.Fatalf("want BMS** below the cross-over, got %s (sel %.2f)", a.ForMinValid, a.ItemSelectivity)
	}
	if a.ForValidMin != "BMSPlusPlus" {
		t.Fatalf("valid-min recommendation: %s", a.ForValidMin)
	}
}

func TestAdviseUnselectiveMonotone(t *testing.T) {
	m := adviseMiner(t)
	// min(price) <= 7 passes 7 of 8 items → 87.5%
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 7))
	a, err := m.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.ForMinValid != "BMSStar" {
		t.Fatalf("want BMS* above the cross-over, got %s (sel %.2f)", a.ForMinValid, a.ItemSelectivity)
	}
}

func TestAdviseUnclassified(t *testing.T) {
	m := adviseMiner(t)
	q := constraint.And(constraint.NewAggregate(constraint.AggAvg, constraint.Price, constraint.LE, 4))
	a, err := m.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasUnclassified || a.ForValidMin != "BMSPlus" || a.ForMinValid != "AllValid" {
		t.Fatalf("advice: %+v", a)
	}
}

func TestAdviseSelectivityMeasured(t *testing.T) {
	m := adviseMiner(t) // prices 1..8
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 4))
	a, err := m.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.ItemSelectivity != 0.5 {
		t.Fatalf("selectivity = %g, want 0.5", a.ItemSelectivity)
	}
}

func TestAdviseString(t *testing.T) {
	m := adviseMiner(t)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 2))
	a, err := m.Advise(q)
	if err != nil {
		t.Fatal(err)
	}
	s := a.String()
	for _, want := range []string{"item selectivity", "recommended for valid minimal", "recommended for minimal valid", "  - "} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
}

func TestAdviseRecommendationMatchesMeasuredCost(t *testing.T) {
	// The advisor's BMS*/BMS** choice must agree with the actual measured
	// sets-considered on this database, at both selectivity extremes.
	db := corrDB(rand.New(rand.NewSource(9)), 8, 300)
	m := newMiner(t, db)
	for _, bound := range []float64{1, 7} {
		q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, bound))
		a, err := m.Advise(q)
		if err != nil {
			t.Fatal(err)
		}
		star, err := m.BMSStar(q)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := m.BMSStarStar(q, StarStarOptions{PushMonotoneSuccinct: true})
		if err != nil {
			t.Fatal(err)
		}
		betterIsStar := star.Stats.SetsConsidered <= ss.Stats.SetsConsidered
		recommendedStar := a.ForMinValid == "BMSStar"
		if betterIsStar != recommendedStar {
			t.Logf("bound %g: advisor picked %s; measured BMS*=%d BMS**=%d",
				bound, a.ForMinValid, star.Stats.SetsConsidered, ss.Stats.SetsConsidered)
			// The cross-over estimate is a heuristic from the paper's
			// figures, not a guarantee; only fail when the miss is large.
			worse := float64(star.Stats.SetsConsidered) / float64(ss.Stats.SetsConsidered)
			if recommendedStar {
				worse = 1 / worse
			}
			if worse > 3 {
				t.Fatalf("advisor badly wrong (%.1fx) at bound %g", worse, bound)
			}
		}
	}
}
