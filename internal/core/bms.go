package core

import (
	"context"
	"time"

	"ccs/internal/contingency"
	"ccs/internal/itemset"
)

// bmsOutcome is the result of the unconstrained baseline run: the minimal
// correlated and CT-supported sets (SIG) plus cost statistics. cause is
// non-nil when the run was truncated (cancellation, deadline, budget); sig
// then covers only the completed levels.
type bmsOutcome struct {
	sig   []itemset.Set
	stats Stats
	cause error
}

// runBaseline executes Brin et al.'s level-wise algorithm: candidates whose
// every subset is CT-supported but uncorrelated (NOTSIG) are counted; a
// candidate that is CT-supported and correlated is a minimal correlated set
// and is never expanded. Truncation discards the level in flight, so sig is
// always a per-level prefix of the full run. algo labels the level engine's
// shard metrics (the baseline also serves BMS+ and BMS*).
func (m *Miner) runBaseline(ctl *runCtl, algo string) (*bmsOutcome, error) {
	out := &bmsOutcome{}
	l1 := m.frequentItems(nil)
	notsig := itemset.NewRegistry()
	cands := ctl.candgen(func() []itemset.Set { return pairs(l1, nil) })
	out.stats.Candidates += len(cands)

	for level := 2; len(cands) > 0 && level <= m.res.maxLevel; level++ {
		if cause := ctl.interrupted(&out.stats); cause != nil {
			out.cause = cause
			break
		}
		out.stats.Levels++
		levelStart := time.Now()
		m.report("BMS", "levelwise", level, len(cands))
		// Level effects stay in these buffers until the level completes, so
		// a level truncated mid-shard is discarded whole.
		var sigLevel, notsigLevel []itemset.Set
		err := m.runLevel(ctl, &out.stats, levelSpec{
			algo:  algo,
			phase: "levelwise",
			level: level,
			cands: cands,
			eval: func(s itemset.Set, t *contingency.Table) {
				if !t.CTSupported(m.res.s, m.res.CTFraction) {
					return
				}
				if m.correlated(&out.stats, t) {
					sigLevel = append(sigLevel, s)
				} else {
					notsigLevel = append(notsigLevel, s)
				}
			},
		})
		if err != nil {
			if cause := ctl.truncation(err); cause != nil {
				out.cause = cause
				out.stats.endLevel(levelStart)
				break
			}
			return nil, err
		}
		out.sig = append(out.sig, sigLevel...)
		for _, s := range notsigLevel {
			notsig.Add(s)
		}
		cands = ctl.candgen(func() []itemset.Set { return extend(notsigLevel, l1, nil, notsig) })
		out.stats.Candidates += len(cands)
		out.stats.endLevel(levelStart)
	}
	itemset.SortSets(out.sig)
	return out, nil
}

// BMS computes the unconstrained answer set of Brin et al.: all minimal
// correlated and CT-supported itemsets.
func (m *Miner) BMS() (*Result, error) {
	return m.BMSContext(context.Background())
}
