package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ccs/internal/constraint"
	"ccs/internal/itemset"
)

func testQuery() *constraint.Conjunction {
	return constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 3))
}

// runners enumerates every algorithm's Context entry point so the
// cancellation contract is tested uniformly across all of them.
var runners = []struct {
	name string
	run  func(m *Miner, ctx context.Context, q *constraint.Conjunction) (*Result, error)
}{
	{"BMS", func(m *Miner, ctx context.Context, q *constraint.Conjunction) (*Result, error) {
		return m.BMSContext(ctx)
	}},
	{"BMS+", func(m *Miner, ctx context.Context, q *constraint.Conjunction) (*Result, error) {
		return m.BMSPlusContext(ctx, q)
	}},
	{"BMS++", func(m *Miner, ctx context.Context, q *constraint.Conjunction) (*Result, error) {
		return m.BMSPlusPlusContext(ctx, q, PlusPlusOptions{PushMonotoneSuccinct: true})
	}},
	{"BMS*", func(m *Miner, ctx context.Context, q *constraint.Conjunction) (*Result, error) {
		return m.BMSStarContext(ctx, q)
	}},
	{"BMS**", func(m *Miner, ctx context.Context, q *constraint.Conjunction) (*Result, error) {
		return m.BMSStarStarContext(ctx, q, StarStarOptions{})
	}},
	{"AllValid", func(m *Miner, ctx context.Context, q *constraint.Conjunction) (*Result, error) {
		return m.AllValidContext(ctx, q)
	}},
}

func answerSet(res *Result) map[string]bool {
	out := make(map[string]bool, len(res.Answers))
	for _, s := range res.Answers {
		out[s.String()] = true
	}
	return out
}

// TestCancelMidRun cancels each algorithm from its progress observer after
// a couple of levels and checks the contract: prompt return, Truncated set
// with Cause == context.Canceled, and every reported answer also present
// in the uncancelled run's answer set (soundness of the partial result).
func TestCancelMidRun(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(11)), 9, 300)
	q := testQuery()
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			full, err := New(db, testParams())
			if err != nil {
				t.Fatal(err)
			}
			want, err := r.run(full, context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if want.Truncated {
				t.Fatalf("uncancelled run reports Truncated")
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			events := 0
			m, err := New(db, testParams(), WithProgress(func(ProgressEvent) {
				events++
				if events == 2 {
					cancel()
				}
			}))
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.run(m, ctx, q)
			if err != nil {
				t.Fatalf("cancelled run failed: %v", err)
			}
			if !got.Truncated {
				// Tiny searches can finish before the second progress
				// event; then there is nothing to truncate.
				if events < 2 {
					t.Skip("search too small to cancel mid-run")
				}
				t.Fatalf("cancelled run not marked Truncated (events=%d)", events)
			}
			if !errors.Is(got.Cause, context.Canceled) {
				t.Fatalf("Cause = %v, want context.Canceled", got.Cause)
			}
			wantSet := answerSet(want)
			for _, s := range got.Answers {
				if !wantSet[s.String()] {
					t.Errorf("truncated run reported %v, absent from the full answer set", s)
				}
			}
			if len(got.Answers) > len(want.Answers) {
				t.Errorf("truncated run has %d answers, full run %d", len(got.Answers), len(want.Answers))
			}
		})
	}
}

// TestPreCancelledContext checks a context cancelled before the run starts
// yields an empty truncated result, not an error.
func TestPreCancelledContext(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(5)), 7, 150)
	q := testQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			m, err := New(db, testParams())
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.run(m, ctx, q)
			if err != nil {
				t.Fatalf("pre-cancelled run failed: %v", err)
			}
			if !res.Truncated || !errors.Is(res.Cause, context.Canceled) {
				t.Fatalf("Truncated=%v Cause=%v, want truncation by context.Canceled", res.Truncated, res.Cause)
			}
			if len(res.Answers) != 0 {
				t.Fatalf("pre-cancelled run reported %d answers", len(res.Answers))
			}
		})
	}
}

// TestDeadlineTruncates drives BMS++ against an already-expired deadline
// and checks the cause is context.DeadlineExceeded, not the budget.
func TestDeadlineTruncates(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(7)), 8, 200)
	m, err := New(db, testParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := m.BMSPlusPlusContext(ctx, testQuery(), PlusPlusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.Cause, context.DeadlineExceeded) {
		t.Fatalf("Truncated=%v Cause=%v, want DeadlineExceeded", res.Truncated, res.Cause)
	}
	if errors.Is(res.Cause, ErrBudgetExceeded) {
		t.Fatalf("caller deadline misattributed to the budget: %v", res.Cause)
	}
}

// TestBudgetMaxCandidates checks candidate-count exhaustion truncates with
// an ErrBudgetExceeded cause.
func TestBudgetMaxCandidates(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(11)), 9, 300)
	m, err := New(db, testParams(), WithBudget(Budget{MaxCandidates: 5}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.BMS()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.Cause, ErrBudgetExceeded) {
		t.Fatalf("Truncated=%v Cause=%v, want ErrBudgetExceeded", res.Truncated, res.Cause)
	}
}

// TestBudgetMaxCells checks the contingency-cell budget truncates likewise.
func TestBudgetMaxCells(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(11)), 9, 300)
	m, err := New(db, testParams(), WithBudget(Budget{MaxCells: 16}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.BMSPlusContext(context.Background(), testQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.Cause, ErrBudgetExceeded) {
		t.Fatalf("Truncated=%v Cause=%v, want ErrBudgetExceeded", res.Truncated, res.Cause)
	}
}

// TestBudgetMaxWall checks wall-clock exhaustion is attributed to the
// budget even though it is delivered as a context deadline.
func TestBudgetMaxWall(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(11)), 9, 300)
	m, err := New(db, testParams(), WithBudget(Budget{MaxWall: time.Nanosecond}))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // let the nanosecond deadline expire
	res, err := m.BMSContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.Cause, ErrBudgetExceeded) {
		t.Fatalf("Truncated=%v Cause=%v, want ErrBudgetExceeded via MaxWall", res.Truncated, res.Cause)
	}
}

// TestUnbudgetedRunsUnaffected checks the zero Budget and background
// context leave results untouched — BMS via the Context path must match
// the plain call exactly.
func TestUnbudgetedRunsUnaffected(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(13)), 8, 200)
	m1, err := New(db, testParams())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m1.BMS()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(db, testParams(), WithBudget(Budget{}))
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := m2.BMSContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if viaCtx.Truncated || plain.Truncated {
		t.Fatal("unexpected truncation")
	}
	if len(plain.Answers) != len(viaCtx.Answers) {
		t.Fatalf("answer counts differ: %d vs %d", len(plain.Answers), len(viaCtx.Answers))
	}
	for i := range plain.Answers {
		if itemset.Compare(plain.Answers[i], viaCtx.Answers[i]) != 0 {
			t.Fatalf("answers differ at %d: %v vs %v", i, plain.Answers[i], viaCtx.Answers[i])
		}
	}
}
