package core

import (
	"context"
	"time"

	"ccs/internal/constraint"
	"ccs/internal/contingency"
	"ccs/internal/itemset"
)

// AllValid computes every itemset that is correlated, CT-supported and
// valid — with no minimality filtering. This is the sound answer set for
// constraints that are neither anti-monotone nor monotone (the paper's
// future-work case, e.g. avg(S.price) <= c): their solution space "may
// have holes in it", so returning only minimal elements is meaningless,
// but the full set is still well-defined.
//
// The search runs level-wise over the CT-supported space, which does not
// depend on the constraints at all; only anti-monotone constraints (which
// are downward-safe) prune, and every surviving set is tested exactly.
// Constraints with no classification cost one evaluation per CT-supported
// correlated set — the price of their irregular geometry.
func (m *Miner) AllValid(q *constraint.Conjunction) (*Result, error) {
	return m.AllValidContext(context.Background(), q)
}

// AllValidContext is AllValid honoring ctx and the Miner's Budget; on
// truncation the valid sets of the completed levels are returned with
// Result.Truncated set.
func (m *Miner) AllValidContext(ctx context.Context, q *constraint.Conjunction) (*Result, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	const algo = "all"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	stats := Stats{}
	l1 := m.frequentItems(split.AMMGF().Allowed)
	cands := ctl.candgen(func() []itemset.Set { return pairs(l1, nil) })
	stats.Candidates += len(cands)

	supp := itemset.NewRegistry()
	var answers []itemset.Set
	var cause error
	for level := 2; len(cands) > 0 && level <= m.res.maxLevel; level++ {
		if cause = ctl.interrupted(&stats); cause != nil {
			break
		}
		stats.Levels++
		levelStart := time.Now()
		m.report("AllValid", "levelwise", level, len(cands))
		var suppLevel, answersLevel []itemset.Set
		err := m.runLevel(ctl, &stats, levelSpec{
			algo:  algo,
			phase: "levelwise",
			level: level,
			cands: cands,
			pre: func(c itemset.Set) shardVerdict {
				if split.SatisfiesAMOther(m.cat, c) {
					return keepSet
				}
				return dropSetAM
			},
			eval: func(s itemset.Set, t *contingency.Table) {
				if !t.CTSupported(m.res.s, m.res.CTFraction) {
					return
				}
				suppLevel = append(suppLevel, s)
				if !m.correlated(&stats, t) {
					return
				}
				// exact validity: monotone and unclassified constraints are
				// evaluated directly on every correlated set
				if split.SatisfiesM(m.cat, s) && satisfiesOther(split, m, s) {
					answersLevel = append(answersLevel, s)
				}
			},
		})
		if err != nil {
			if cause = ctl.truncation(err); cause != nil {
				stats.endLevel(levelStart)
				break
			}
			return nil, err
		}
		for _, s := range suppLevel {
			supp.Add(s)
		}
		answers = append(answers, answersLevel...)
		cands = ctl.candgen(func() []itemset.Set { return extend(suppLevel, l1, nil, supp) })
		stats.Candidates += len(cands)
		stats.endLevel(levelStart)
	}
	itemset.SortSets(answers)
	res := &Result{Answers: answers, Stats: stats}
	if cause != nil {
		truncate(res, cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}

func satisfiesOther(split *constraint.Split, m *Miner, s itemset.Set) bool {
	for _, c := range split.Other {
		if !c.Satisfies(m.cat, s) {
			return false
		}
	}
	return true
}
