package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccs/internal/contingency"
	"ccs/internal/counting"
	"ccs/internal/itemset"
	"ccs/internal/obs"
)

// This file implements the sharded, pipelined level engine every
// level-wise algorithm runs on (see DESIGN.md §10 and §14). One lattice
// level's work — anti-monotone pre-checks, counting, and statistical
// evaluation — is described by a levelSpec and executed by runLevel. With
// Workers <= 1 (or a counter that cannot count concurrently) runLevel is
// the exact serial path the algorithms always had; with more workers the
// candidate batch is sharded by the cost model (counting.PlanShards): a
// worker pool counts shards in longest-first dispatch order while the
// mining goroutine evaluates finished shards in index order, claiming and
// counting any shard the pool has not started rather than stalling on it.
// Evaluation always happens in canonical batch order, and each algorithm
// buffers its per-level effects until runLevel returns success, so the
// mined answers, Stats counters, and budget/truncation behavior are
// byte-identical to the serial run at every worker count.

// shardVerdict is a pre-check's decision for one candidate.
type shardVerdict uint8

const (
	// keepSet admits the candidate to counting.
	keepSet shardVerdict = iota
	// dropSet discards the candidate silently (e.g. the upward sweep
	// dropping supersets of an already-found answer).
	dropSet
	// dropSetAM discards the candidate as failing a non-succinct
	// anti-monotone constraint; counted in Stats.PrunedByAM.
	dropSetAM
)

// levelSpec describes one lattice level's batched work.
type levelSpec struct {
	// algo labels the shard metrics; use the same lowercase name passed to
	// startMine.
	algo string
	// phase and level label the profiler's per-level records (same values
	// as the ProgressEvent the level reports); unused when profiling is
	// off.
	phase string
	level int
	// cands is the level's candidate batch in canonical order
	// (itemset.SortSets) — the order the prefix-aligned shards and the
	// evaluation sequence both rely on.
	cands []itemset.Set
	// pre screens a candidate before counting; nil keeps every candidate.
	// It must be a pure function of the candidate (it runs concurrently
	// and its verdicts must not depend on evaluation order).
	pre func(itemset.Set) shardVerdict
	// eval consumes one counted candidate. Calls arrive strictly in
	// canonical batch order on the mining goroutine, but — because a level
	// in flight can still be discarded by cancellation — eval must only
	// write level-local state that the caller commits after runLevel
	// returns nil.
	eval func(s itemset.Set, t *contingency.Table)
}

// minParallelCands is the smallest batch worth even pricing for shards;
// below it the plan is always a single shard and the serial path is
// cheaper than building one.
const minParallelCands = 16

// preSpansPerWorker over-decomposes the pre-check stage (pre-checks are
// cheap and uniform, so light oversubscription suffices).
const preSpansPerWorker = 4

// effectiveWorkers resolves the Workers knob: 0 means GOMAXPROCS,
// anything below 1 means serial.
func (m *Miner) effectiveWorkers() int {
	w := m.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// levelScratch holds the parallel engine's per-level buffers, owned by one
// run (it lives on runCtl) and reused across its levels so steady-state
// levels allocate only their work channel. Slices are grown, never shrunk.
type levelScratch struct {
	verdicts []shardVerdict
	tables   []*contingency.Table
	claims   []atomic.Int32 // 0 = unstarted, 1 = claimed by a counter
	errs     []error
	done     []chan struct{} // cap-1 done tokens, one per shard, drained every level
	workerOf []int
	durs     []time.Duration
	sprofs   []*counting.ShardProf
	busyNs   []int64
	shardCnt []int
}

// verdictBuf returns a verdict buffer of length n (contents arbitrary —
// the pre-check stage writes every slot before any is read).
func (s *levelScratch) verdictBuf(n int) []shardVerdict {
	if cap(s.verdicts) < n {
		s.verdicts = make([]shardVerdict, n)
	}
	return s.verdicts[:n]
}

// ensure sizes the per-shard and per-set buffers for a level of nShards
// shards over nSets kept candidates and resets the per-level state.
func (s *levelScratch) ensure(nShards, nSets, nWorkers int) {
	if cap(s.tables) < nSets {
		s.tables = make([]*contingency.Table, nSets)
	}
	s.tables = s.tables[:nSets]
	if cap(s.claims) < nShards {
		s.claims = make([]atomic.Int32, nShards)
		s.errs = make([]error, nShards)
		s.workerOf = make([]int, nShards)
		s.durs = make([]time.Duration, nShards)
	}
	s.claims = s.claims[:nShards]
	s.errs = s.errs[:nShards]
	s.workerOf = s.workerOf[:nShards]
	s.durs = s.durs[:nShards]
	for i := 0; i < nShards; i++ {
		s.claims[i].Store(0)
		s.errs[i] = nil
		s.workerOf[i] = 0
		s.durs[i] = 0
	}
	for len(s.done) < nShards {
		s.done = append(s.done, make(chan struct{}, 1))
	}
	if cap(s.busyNs) < nWorkers {
		s.busyNs = make([]int64, nWorkers)
		s.shardCnt = make([]int, nWorkers)
	}
	s.busyNs = s.busyNs[:nWorkers]
	s.shardCnt = s.shardCnt[:nWorkers]
	for w := 0; w < nWorkers; w++ {
		s.busyNs[w] = 0
		s.shardCnt[w] = 0
	}
}

// profBuf returns nShards zeroed shard-profiling arenas (profiled runs
// only).
func (s *levelScratch) profBuf(nShards int) []*counting.ShardProf {
	for len(s.sprofs) < nShards {
		s.sprofs = append(s.sprofs, &counting.ShardProf{})
	}
	out := s.sprofs[:nShards]
	for _, sp := range out {
		*sp = counting.ShardProf{}
	}
	return out
}

// runLevel executes one level under ctl. Its error contract matches
// countBatchCtl: callers classify a non-nil error with ctl.truncation and
// discard the level in flight. On success every kept candidate has been
// evaluated exactly once, in canonical order.
func (m *Miner) runLevel(ctl *runCtl, stats *Stats, spec levelSpec) error {
	workers := m.effectiveWorkers()
	if workers > 1 && len(spec.cands) >= minParallelCands {
		if sc, ok := m.cnt.(counting.ShardCounter); ok {
			return m.runLevelParallel(ctl, stats, spec, sc, workers)
		}
	}
	return m.runLevelSerial(ctl, stats, spec)
}

// runLevelSerial is the exact single-threaded path: pre-check, one batched
// count, in-order evaluation. When profiling is on, the three stages are
// timed on this goroutine and the whole batch reports as one shard
// (worker 0), so serial and parallel profiles share a schema.
func (m *Miner) runLevelSerial(ctl *runCtl, stats *Stats, spec levelSpec) error {
	lp, cells0 := ctl.startLevel(spec)
	prof := lp != nil
	var t0 time.Time
	var a0 int64
	if prof {
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	kept := spec.cands
	if spec.pre != nil {
		kept = spec.cands[:0]
		for _, c := range spec.cands {
			switch spec.pre(c) {
			case keepSet:
				kept = append(kept, c)
			case dropSetAM:
				stats.PrunedByAM++
			}
		}
	}
	var sp *counting.ShardProf
	if prof {
		observePart(lp, obs.PhasePrecheck, time.Since(t0), obs.AllocBytes()-a0)
		sp = &counting.ShardProf{}
		ctl.sp = sp
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	tables, err := m.countBatchCtl(ctl, stats, kept)
	if prof {
		ctl.sp = nil
		d := time.Since(t0)
		observePart(lp, obs.PhaseCount, d, obs.AllocBytes()-a0)
		if sp.Sets.Load() > 0 {
			lp.AddShard(shardStat(0, d, counting.CostModelOf(m.cnt).BatchCost(kept), sp))
		}
	}
	if err != nil {
		ctl.endLevel(lp, len(kept), cells0)
		return err
	}
	if prof {
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	for i, t := range tables {
		spec.eval(kept[i], t)
	}
	if prof {
		observePart(lp, obs.PhaseEval, time.Since(t0), obs.AllocBytes()-a0)
	}
	ctl.endLevel(lp, len(kept), cells0)
	return nil
}

// runLevelParallel shards the batch by estimated counting cost and
// pipelines counting against evaluation. The budget is settled exactly as
// in the serial path — the whole level's cells are charged and the trip
// decision taken before any table is built or evaluated — so budget
// truncation is deterministic across worker counts. Cancellation is
// observed per shard (each counting call polls ctl.ctx); any shard error
// discards the level whole, after the end-of-level barrier, which
// preserves the whole-level prefix soundness guarantee of Result.Answers.
//
// Three design points kill the hand-off overhead the old sibling-group
// engine measured (26-29% stall, ≪100µs shards, two cache-lock trips per
// candidate):
//
//   - Shards come from counting.PlanShards: prefix-run aligned, each at
//     least MinShardCost of estimated work, dispatched costliest-first so
//     one big shard cannot strand the pool at the end of the level.
//   - Counting runs through per-worker cache arenas (counting.ArenaCounter)
//     when the counter supports them: zero locks on the hot path, one
//     merge into the shared cache at level commit.
//   - The evaluator helps instead of stalling: needing shard i, it first
//     tries to claim i and count it inline; it blocks only when a worker
//     already owns i. On one core this degenerates to the serial schedule
//     (near-zero stall); on many cores it adds a worker.
func (m *Miner) runLevelParallel(ctl *runCtl, stats *Stats, spec levelSpec, sc counting.ShardCounter, workers int) error {
	lp, cells0 := ctl.startLevel(spec)
	prof := lp != nil
	var t0 time.Time
	var a0 int64
	if prof {
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	scr := &ctl.scratch

	// Stage 1: pre-check over coarse spans, then an in-place compaction on
	// this goroutine — the same left-to-right order as the serial path, so
	// kept and Stats.PrunedByAM come out identical.
	kept := spec.cands
	if spec.pre != nil {
		verdicts := scr.verdictBuf(len(spec.cands))
		spans := evenSpans(len(spec.cands), workers*preSpansPerWorker)
		runPool(workers, len(spans), func(i int) {
			for j := spans[i][0]; j < spans[i][1]; j++ {
				verdicts[j] = spec.pre(spec.cands[j])
			}
		})
		kept = spec.cands[:0]
		for j, c := range spec.cands {
			switch verdicts[j] {
			case keepSet:
				kept = append(kept, c)
			case dropSetAM:
				stats.PrunedByAM++
			}
		}
	}

	// Settle the budget for the whole level before dispatching any
	// counting — the same charge, the same trip point, and the same cause
	// values the serial countBatchCtl produces.
	for _, s := range kept {
		ctl.cells += int64(1) << uint(s.Size())
	}
	if prof {
		observePart(lp, obs.PhasePrecheck, time.Since(t0), obs.AllocBytes()-a0)
	}
	if len(kept) == 0 {
		ctl.endLevel(lp, 0, cells0)
		return nil
	}
	if cause := ctl.interrupted(stats); cause != nil {
		ctl.endLevel(lp, len(kept), cells0)
		return cause
	}
	stats.DBScans++
	stats.SetsConsidered += len(kept)

	plan := counting.CostModelOf(m.cnt).PlanShards(kept, workers)
	if len(plan.Shards) <= 1 {
		// The whole level is worth less than one shard budget: count it on
		// this goroutine. The plan told us parallelism cannot pay here.
		return m.finishLevelOneShard(ctl, stats, spec, sc, lp, cells0, kept, plan.Total)
	}

	// Stage 2: the pool counts shards costliest-first while this goroutine
	// evaluates them in index order, claiming unstarted shards itself.
	nShards := len(plan.Shards)
	n := workers
	if n > nShards {
		n = nShards
	}
	scr.ensure(nShards, len(kept), n+1) // slot n = the helping evaluator
	var la *counting.LevelArenas
	ac, hasArenas := sc.(counting.ArenaCounter)
	if hasArenas {
		la = ac.NewLevelArenas(n + 1)
	}
	var sprofs []*counting.ShardProf
	if prof {
		sprofs = scr.profBuf(nShards)
	}

	// countShard counts shard si as counter slot w, into the shared table
	// buffer. Shard spans are disjoint, so slots never write the same
	// element; claims guarantee one counter per shard.
	countShard := func(w, si int) error {
		span := plan.Shards[si].Span
		sets := kept[span[0]:span[1]]
		out := scr.tables[span[0]:span[1]]
		cctx := ctl.ctx
		if prof {
			cctx = counting.WithShardProf(cctx, sprofs[si])
		}
		if hasArenas {
			return ac.CountShardArena(cctx, sets, out, la.Arena(w))
		}
		ts, err := sc.CountShard(cctx, sets)
		if err != nil {
			return err
		}
		copy(out, ts)
		return nil
	}

	work := make(chan int, nShards)
	for _, si := range plan.Order {
		work <- si
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workersBusy.Inc()
			defer workersBusy.Dec()
			var busy time.Duration
			counted := 0
			for si := range work {
				if !scr.claims[si].CompareAndSwap(0, 1) {
					continue // the evaluator got there first
				}
				start := time.Now()
				scr.errs[si] = countShard(w, si)
				d := time.Since(start)
				scr.durs[si] = d
				scr.workerOf[si] = w
				busy += d
				counted++
				scr.done[si] <- struct{}{}
			}
			// Written once per worker per level, read after the barrier.
			scr.busyNs[w] = int64(busy)
			scr.shardCnt[w] = counted
		}(w)
	}

	// The evaluator's time splits into stall (blocked on a worker-owned
	// shard — the residual hand-off cost), count (shards it claimed and
	// counted itself), and evaluate (spec.eval proper). Exactly one done
	// token is sent per worker-claimed shard and received per evaluator
	// CAS failure, so the cap-1 channels drain every level.
	var stall, helpBusy, evalDur time.Duration
	helped := 0
	if prof {
		a0 = obs.AllocBytes()
	}
	var firstErr error
	for si := 0; si < nShards; si++ {
		if scr.claims[si].CompareAndSwap(0, 1) {
			if firstErr == nil {
				start := time.Now()
				scr.errs[si] = countShard(n, si)
				d := time.Since(start)
				scr.durs[si] = d
				scr.workerOf[si] = n
				helpBusy += d
				helped++
			} else {
				scr.errs[si] = firstErr // level is doomed; skip the work
			}
		} else if prof {
			ts := time.Now()
			<-scr.done[si]
			stall += time.Since(ts)
		} else {
			<-scr.done[si]
		}
		if firstErr != nil {
			continue
		}
		if scr.errs[si] != nil {
			firstErr = scr.errs[si]
			continue
		}
		span := plan.Shards[si].Span
		if prof {
			te := time.Now()
			for j := span[0]; j < span[1]; j++ {
				spec.eval(kept[j], scr.tables[j])
			}
			evalDur += time.Since(te)
		} else {
			for j := span[0]; j < span[1]; j++ {
				spec.eval(kept[j], scr.tables[j])
			}
		}
	}
	wg.Wait() // end-of-level barrier before the caller decides Truncated
	la.Commit()

	// Per-shard metric sends batched to one pass after the barrier.
	minedShards.With(spec.algo).Add(int64(nShards))
	for si := 0; si < nShards; si++ {
		if scr.durs[si] > 0 {
			shardSeconds.Observe(scr.durs[si].Seconds())
		}
	}
	if prof {
		scr.busyNs[n] = int64(helpBusy)
		scr.shardCnt[n] = helped
		observePart(lp, obs.PhaseStall, stall, 0)
		observePart(lp, obs.PhaseCount, helpBusy, 0)
		observePart(lp, obs.PhaseEval, evalDur, obs.AllocBytes()-a0)
		for si := 0; si < nShards; si++ {
			lp.AddShard(shardStat(scr.workerOf[si], scr.durs[si], plan.Shards[si].Cost, sprofs[si]))
		}
		for w := 0; w <= n; w++ {
			if scr.shardCnt[w] > 0 {
				ctl.prof.AddWorker(w, time.Duration(scr.busyNs[w]), scr.shardCnt[w])
			}
		}
	}
	ctl.endLevel(lp, len(kept), cells0)
	return firstErr
}

// finishLevelOneShard completes a level whose shard plan collapsed to a
// single shard: pre-checks are done and the budget settled, so this is
// the serial count-then-evaluate tail, profiled as one worker-0 shard.
func (m *Miner) finishLevelOneShard(ctl *runCtl, stats *Stats, spec levelSpec, sc counting.ShardCounter, lp *obs.LevelProf, cells0 int64, kept []itemset.Set, cost int64) error {
	prof := lp != nil
	var sp *counting.ShardProf
	var t0 time.Time
	var a0 int64
	cctx := ctl.ctx
	if prof {
		sp = &counting.ShardProf{}
		cctx = counting.WithShardProf(cctx, sp)
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	tables, err := sc.CountShard(cctx, kept)
	minedShards.With(spec.algo).Inc()
	if prof {
		d := time.Since(t0)
		observePart(lp, obs.PhaseCount, d, obs.AllocBytes()-a0)
		lp.AddShard(shardStat(0, d, cost, sp))
		if d > 0 {
			shardSeconds.Observe(d.Seconds())
		}
	}
	if err != nil {
		ctl.endLevel(lp, len(kept), cells0)
		return err
	}
	if prof {
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	for i, t := range tables {
		spec.eval(kept[i], t)
	}
	if prof {
		observePart(lp, obs.PhaseEval, time.Since(t0), obs.AllocBytes()-a0)
	}
	ctl.endLevel(lp, len(kept), cells0)
	return nil
}

// evenSpans splits [0, n) into at most parts contiguous, near-equal spans.
func evenSpans(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	spans := make([][2]int, 0, parts)
	for i := 0; i < parts; i++ {
		lo, hi := i*n/parts, (i+1)*n/parts
		if lo < hi {
			spans = append(spans, [2]int{lo, hi})
		}
	}
	return spans
}

// runPool runs fn(0..n-1) across at most workers goroutines and waits for
// all of them.
func runPool(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
