package core

import (
	"runtime"
	"sync"
	"time"

	"ccs/internal/contingency"
	"ccs/internal/counting"
	"ccs/internal/itemset"
	"ccs/internal/obs"
)

// This file implements the sharded, pipelined level engine every
// level-wise algorithm runs on (see DESIGN.md §10). One lattice level's
// work — anti-monotone pre-checks, counting, and statistical evaluation —
// is described by a levelSpec and executed by runLevel. With Workers <= 1
// (or a counter that cannot count concurrently) runLevel is the exact
// serial path the algorithms always had; with more workers the candidate
// batch is split into prefix-aligned shards, a worker pool pre-checks and
// counts them, and a two-stage pipeline evaluates shard k on the mining
// goroutine while the pool is still counting shard k+1. Evaluation always
// happens in canonical batch order, and each algorithm buffers its
// per-level effects until runLevel returns success, so the mined answers,
// Stats counters, and budget/truncation behavior are byte-identical to the
// serial run at every worker count.

// shardVerdict is a pre-check's decision for one candidate.
type shardVerdict uint8

const (
	// keepSet admits the candidate to counting.
	keepSet shardVerdict = iota
	// dropSet discards the candidate silently (e.g. the upward sweep
	// dropping supersets of an already-found answer).
	dropSet
	// dropSetAM discards the candidate as failing a non-succinct
	// anti-monotone constraint; counted in Stats.PrunedByAM.
	dropSetAM
)

// levelSpec describes one lattice level's batched work.
type levelSpec struct {
	// algo labels the shard metrics; use the same lowercase name passed to
	// startMine.
	algo string
	// phase and level label the profiler's per-level records (same values
	// as the ProgressEvent the level reports); unused when profiling is
	// off.
	phase string
	level int
	// cands is the level's candidate batch in canonical order
	// (itemset.SortSets) — the order the prefix-aligned shards and the
	// evaluation sequence both rely on.
	cands []itemset.Set
	// pre screens a candidate before counting; nil keeps every candidate.
	// It must be a pure function of the candidate (it runs concurrently
	// and its verdicts must not depend on evaluation order).
	pre func(itemset.Set) shardVerdict
	// eval consumes one counted candidate. Calls arrive strictly in
	// canonical batch order on the mining goroutine, but — because a level
	// in flight can still be discarded by cancellation — eval must only
	// write level-local state that the caller commits after runLevel
	// returns nil.
	eval func(s itemset.Set, t *contingency.Table)
}

// minParallelCands is the smallest batch worth sharding; below it the
// goroutine handoff costs more than the counting it would overlap.
const minParallelCands = 16

// shardsPerWorker oversubscribes the shard count so a slow shard (one
// huge sibling group) does not leave the rest of the pool idle.
const shardsPerWorker = 4

// effectiveWorkers resolves the Workers knob: 0 means GOMAXPROCS,
// anything below 1 means serial.
func (m *Miner) effectiveWorkers() int {
	w := m.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runLevel executes one level under ctl. Its error contract matches
// countBatchCtl: callers classify a non-nil error with ctl.truncation and
// discard the level in flight. On success every kept candidate has been
// evaluated exactly once, in canonical order.
func (m *Miner) runLevel(ctl *runCtl, stats *Stats, spec levelSpec) error {
	workers := m.effectiveWorkers()
	if workers > 1 && len(spec.cands) >= minParallelCands {
		if sc, ok := m.cnt.(counting.ShardCounter); ok {
			return m.runLevelParallel(ctl, stats, spec, sc, workers)
		}
	}
	return m.runLevelSerial(ctl, stats, spec)
}

// runLevelSerial is the exact single-threaded path: pre-check, one batched
// count, in-order evaluation. When profiling is on, the three stages are
// timed on this goroutine and the whole batch reports as one shard
// (worker 0), so serial and parallel profiles share a schema.
func (m *Miner) runLevelSerial(ctl *runCtl, stats *Stats, spec levelSpec) error {
	lp, cells0 := ctl.startLevel(spec)
	prof := lp != nil
	var t0 time.Time
	var a0 int64
	if prof {
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	kept := spec.cands
	if spec.pre != nil {
		kept = spec.cands[:0]
		for _, c := range spec.cands {
			switch spec.pre(c) {
			case keepSet:
				kept = append(kept, c)
			case dropSetAM:
				stats.PrunedByAM++
			}
		}
	}
	var sp *counting.ShardProf
	if prof {
		observePart(lp, obs.PhasePrecheck, time.Since(t0), obs.AllocBytes()-a0)
		sp = &counting.ShardProf{}
		ctl.sp = sp
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	tables, err := m.countBatchCtl(ctl, stats, kept)
	if prof {
		ctl.sp = nil
		d := time.Since(t0)
		observePart(lp, obs.PhaseCount, d, obs.AllocBytes()-a0)
		if sp.Sets.Load() > 0 {
			lp.AddShard(shardStat(0, d, sp))
		}
	}
	if err != nil {
		ctl.endLevel(lp, len(kept), cells0)
		return err
	}
	if prof {
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	for i, t := range tables {
		spec.eval(kept[i], t)
	}
	if prof {
		observePart(lp, obs.PhaseEval, time.Since(t0), obs.AllocBytes()-a0)
	}
	ctl.endLevel(lp, len(kept), cells0)
	return nil
}

// runLevelParallel shards the batch along prefix runs and pipelines
// counting against evaluation. The budget is settled exactly as in the
// serial path — the whole level's cells are charged and the trip decision
// taken before any table is built or evaluated — so budget truncation is
// deterministic across worker counts. Cancellation is observed per shard
// (each CountShard call polls ctl.ctx); any shard error discards the
// level whole, after the end-of-level barrier, which preserves the
// whole-level prefix soundness guarantee of Result.Answers.
func (m *Miner) runLevelParallel(ctl *runCtl, stats *Stats, spec levelSpec, sc counting.ShardCounter, workers int) error {
	lp, cells0 := ctl.startLevel(spec)
	prof := lp != nil
	var t0 time.Time
	var a0 int64
	if prof {
		t0, a0 = time.Now(), obs.AllocBytes()
	}
	shards := shardSpans(spec.cands, workers)

	// Stage 1: per-shard pre-checks. Each shard filters its own span of
	// the batch in place (spans are disjoint, so workers never touch the
	// same elements).
	kept := make([][]itemset.Set, len(shards))
	if spec.pre == nil {
		for i, sp := range shards {
			kept[i] = spec.cands[sp[0]:sp[1]]
		}
	} else {
		pruned := make([]int, len(shards))
		runPool(workers, len(shards), func(i int) {
			sp := shards[i]
			k := spec.cands[sp[0]:sp[0]]
			for _, c := range spec.cands[sp[0]:sp[1]] {
				switch spec.pre(c) {
				case keepSet:
					k = append(k, c)
				case dropSetAM:
					pruned[i]++
				}
			}
			kept[i] = k
		})
		for _, n := range pruned {
			stats.PrunedByAM += n
		}
	}

	// Settle the budget for the whole level before dispatching any
	// counting — the same charge, the same trip point, and the same cause
	// values the serial countBatchCtl produces.
	total := 0
	for _, k := range kept {
		for _, s := range k {
			ctl.cells += int64(1) << uint(s.Size())
		}
		total += len(k)
	}
	if prof {
		observePart(lp, obs.PhasePrecheck, time.Since(t0), obs.AllocBytes()-a0)
	}
	if total == 0 {
		ctl.endLevel(lp, 0, cells0)
		return nil
	}
	if cause := ctl.interrupted(stats); cause != nil {
		ctl.endLevel(lp, total, cells0)
		return cause
	}
	stats.DBScans++
	stats.SetsConsidered += total

	// Stage 2: the pool counts shards in dispatch order while this
	// goroutine evaluates finished shards in index order — counting of
	// shard k+1 overlaps evaluation of shard k.
	type shardOut struct {
		tables []*contingency.Table
		err    error
		done   chan struct{}
		worker int           // which worker counted it (profiled runs only)
		dur    time.Duration // shard wall time (profiled runs only)
	}
	outs := make([]shardOut, len(shards))
	for i := range outs {
		outs[i].done = make(chan struct{})
	}
	// Profiled runs get one arena per shard (written by one worker at a
	// time, merged below in shard index order — deterministic at every
	// worker count) and per-worker busy tallies (each slot written only by
	// its own worker, read after the barrier).
	var sprofs []*counting.ShardProf
	var busyNs []int64
	var shardCnt []int
	work := make(chan int, len(shards))
	for i := range shards {
		work <- i
	}
	close(work)
	n := workers
	if n > len(shards) {
		n = len(shards)
	}
	if prof {
		sprofs = make([]*counting.ShardProf, len(shards))
		for i := range sprofs {
			sprofs[i] = &counting.ShardProf{}
		}
		busyNs = make([]int64, n)
		shardCnt = make([]int, n)
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				cctx := ctl.ctx
				if prof {
					cctx = counting.WithShardProf(cctx, sprofs[i])
					outs[i].worker = w
				}
				workersBusy.Inc()
				start := time.Now()
				outs[i].tables, outs[i].err = sc.CountShard(cctx, kept[i])
				workersBusy.Dec()
				d := time.Since(start)
				shardSeconds.Observe(d.Seconds())
				minedShards.With(spec.algo).Inc()
				if prof {
					outs[i].dur = d
					busyNs[w] += int64(d)
					shardCnt[w]++
				}
				close(outs[i].done)
			}
		}(w)
	}

	// The evaluator's time splits into stall (blocked on an unfinished
	// shard — the pipeline hand-off cost) and evaluate (spec.eval proper).
	var stall, evalDur time.Duration
	if prof {
		a0 = obs.AllocBytes()
	}
	var firstErr error
	for i := range outs {
		if prof {
			ts := time.Now()
			<-outs[i].done
			stall += time.Since(ts)
		} else {
			<-outs[i].done
		}
		if firstErr != nil {
			continue
		}
		if outs[i].err != nil {
			firstErr = outs[i].err
			continue
		}
		if prof {
			te := time.Now()
			for j, t := range outs[i].tables {
				spec.eval(kept[i][j], t)
			}
			evalDur += time.Since(te)
		} else {
			for j, t := range outs[i].tables {
				spec.eval(kept[i][j], t)
			}
		}
	}
	wg.Wait() // end-of-level barrier before the caller decides Truncated
	if prof {
		observePart(lp, obs.PhaseStall, stall, 0)
		observePart(lp, obs.PhaseEval, evalDur, obs.AllocBytes()-a0)
		for i := range outs {
			lp.AddShard(shardStat(outs[i].worker, outs[i].dur, sprofs[i]))
		}
		for w := 0; w < n; w++ {
			if shardCnt[w] > 0 {
				ctl.prof.AddWorker(w, time.Duration(busyNs[w]), shardCnt[w])
			}
		}
	}
	ctl.endLevel(lp, total, cells0)
	return firstErr
}

// shardSpans splits the batch into at most workers*shardsPerWorker
// contiguous index spans whose boundaries fall on prefix-run boundaries,
// so every sibling group — the unit of prefix-cache reuse — stays on one
// worker.
func shardSpans(cands []itemset.Set, workers int) [][2]int {
	runs := counting.PrefixRuns(cands)
	maxShards := workers * shardsPerWorker
	if len(runs) <= maxShards {
		return runs
	}
	target := (len(cands) + maxShards - 1) / maxShards
	spans := make([][2]int, 0, maxShards)
	start, size := runs[0][0], 0
	for _, r := range runs {
		size += r[1] - r[0]
		if size >= target {
			spans = append(spans, [2]int{start, r[1]})
			start, size = r[1], 0
		}
	}
	if size > 0 {
		spans = append(spans, [2]int{start, runs[len(runs)-1][1]})
	}
	return spans
}

// runPool runs fn(0..n-1) across at most workers goroutines and waits for
// all of them.
func runPool(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
