package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/counting"
	"ccs/internal/dataset"
	"ccs/internal/itemset"
	"ccs/internal/testutil"
)

// wideDB builds a database wide enough (many items) that every algorithm's
// level-2 batch clears minParallelCands and the sharded path actually runs.
func wideDB(r *rand.Rand, nItems, nTx int) *dataset.DB {
	return corrDB(r, nItems, nTx)
}

// runAlgo dispatches one named algorithm on m. The six names cover every
// level-wise loop the parallel engine serves.
func runAlgo(t testing.TB, m *Miner, algo string, q *constraint.Conjunction) *Result {
	t.Helper()
	var res *Result
	var err error
	switch algo {
	case "bms":
		res, err = m.BMS()
	case "bms+":
		res, err = m.BMSPlus(q)
	case "bms++":
		res, err = m.BMSPlusPlus(q, PlusPlusOptions{})
	case "bms*":
		res, err = m.BMSStar(q)
	case "bms**":
		res, err = m.BMSStarStar(q, StarStarOptions{})
	case "all":
		res, err = m.AllValid(q)
	default:
		t.Fatalf("unknown algo %q", algo)
	}
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	return res
}

var allAlgos = []string{"bms", "bms+", "bms++", "bms*", "bms**", "all"}

// statsNoDurations strips the wall-clock field so Stats compare by work
// counters only.
func statsNoDurations(s Stats) Stats {
	s.LevelDurations = nil
	return s
}

// detWorkerCounts are the parallel worker counts the determinism suite
// pins against the serial run: the original power-of-two gate plus
// non-power-of-two counts (3, 7) that exercise uneven shard-to-worker
// assignment, and a count (32) far above any level's shard count so the
// workers>shards clamp path runs too.
var detWorkerCounts = []int{3, 7, 8, 32}

// TestWorkersDeterminism is the acceptance gate of the parallel engine:
// for every algorithm, over randomized datasets and constraint mixes, the
// mined answers and every Stats counter are identical at Workers=1 and
// every parallel worker count. Level durations (wall clock) are the only
// permitted difference.
func TestWorkersDeterminism(t *testing.T) {
	testutil.CheckGoroutines(t)
	queries := queryPool()
	qNames := []string{"empty", "maxLE", "sumLE", "mixed", "disjoint", "mono-nonsucc"}
	for seed := int64(1); seed <= 4; seed++ {
		db := wideDB(rand.New(rand.NewSource(seed)), 12, 300)
		for _, algo := range allAlgos {
			for _, qn := range qNames {
				q := queries[qn]
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, algo, qn), func(t *testing.T) {
					serial, err := New(db, testParams(), WithWorkers(1))
					if err != nil {
						t.Fatal(err)
					}
					want := runAlgo(t, serial, algo, q)
					for _, workers := range detWorkerCounts {
						par, err := New(db, testParams(), WithWorkers(workers))
						if err != nil {
							t.Fatal(err)
						}
						got := runAlgo(t, par, algo, q)
						if !sameSets(want.Answers, got.Answers) {
							t.Errorf("answers differ:\n workers=1: %s\n workers=%d: %s",
								setsString(want.Answers), workers, setsString(got.Answers))
						}
						if ws, gs := statsNoDurations(want.Stats), statsNoDurations(got.Stats); !reflect.DeepEqual(ws, gs) {
							t.Errorf("stats differ:\n workers=1: %+v\n workers=%d: %+v", ws, workers, gs)
						}
						if want.Truncated != got.Truncated {
							t.Errorf("truncated differ: workers=1 %v, workers=%d %v", want.Truncated, workers, got.Truncated)
						}
						if len(want.Stats.LevelDurations) != len(got.Stats.LevelDurations) {
							t.Errorf("level count differ: workers=1 %d, workers=%d %d",
								len(want.Stats.LevelDurations), workers, len(got.Stats.LevelDurations))
						}
					}
				})
			}
		}
	}
}

// TestWorkersBudgetTruncationDeterminism checks that budget truncation
// trips at the same level with the same cause at every worker count: the
// cell budget is settled for the whole level before any shard is
// dispatched, exactly as the serial batch charge.
func TestWorkersBudgetTruncationDeterminism(t *testing.T) {
	testutil.CheckGoroutines(t)
	db := wideDB(rand.New(rand.NewSource(7)), 12, 300)
	q := queryPool()["maxLE"]
	for _, algo := range allAlgos {
		truncations := 0
		for _, budget := range []Budget{
			{MaxCells: 200},
			{MaxCells: 1000},
			{MaxCandidates: 10},
		} {
			t.Run(fmt.Sprintf("%s/cells%d-cands%d", algo, budget.MaxCells, budget.MaxCandidates), func(t *testing.T) {
				serial, err := New(db, testParams(), WithWorkers(1), WithBudget(budget))
				if err != nil {
					t.Fatal(err)
				}
				par, err := New(db, testParams(), WithWorkers(8), WithBudget(budget))
				if err != nil {
					t.Fatal(err)
				}
				want := runAlgo(t, serial, algo, q)
				got := runAlgo(t, par, algo, q)
				if want.Truncated {
					truncations++
				}
				if want.Truncated != got.Truncated {
					t.Fatalf("truncated differ: workers=1 %v, workers=8 %v", want.Truncated, got.Truncated)
				}
				if want.Truncated {
					if wc, gc := want.Cause.Error(), got.Cause.Error(); wc != gc {
						t.Errorf("causes differ:\n workers=1: %s\n workers=8: %s", wc, gc)
					}
				}
				if !sameSets(want.Answers, got.Answers) {
					t.Errorf("answers differ:\n workers=1: %s\n workers=8: %s",
						setsString(want.Answers), setsString(got.Answers))
				}
				if ws, gs := statsNoDurations(want.Stats), statsNoDurations(got.Stats); !reflect.DeepEqual(ws, gs) {
					t.Errorf("stats differ:\n workers=1: %+v\n workers=8: %+v", ws, gs)
				}
			})
		}
		if truncations == 0 {
			t.Errorf("no budget truncated %s; tighten the test budgets", algo)
		}
	}
}

// TestParallelMinerConcurrentRuns hammers one shared Miner — cached bitmap
// counter, 4-way level engine — from 8 goroutines. Run under -race this is
// the concurrency gate for the whole counting + caching + level-engine
// stack; every goroutine must also see exactly the serial answers.
func TestParallelMinerConcurrentRuns(t *testing.T) {
	testutil.CheckGoroutines(t)
	db := wideDB(rand.New(rand.NewSource(11)), 12, 300)
	q := queryPool()["maxLE"]
	cc := counting.NewCachedBitmapCounter(db, 1<<20)
	m, err := New(db, testParams(), WithCounter(cc), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New(db, testParams(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]*Result{}
	for _, algo := range allAlgos {
		want[algo] = runAlgo(t, serial, algo, q)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		algo := allAlgos[g%len(allAlgos)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := func() (res *Result, err error) {
				switch algo {
				case "bms":
					return m.BMS()
				case "bms+":
					return m.BMSPlus(q)
				case "bms++":
					return m.BMSPlusPlus(q, PlusPlusOptions{})
				case "bms*":
					return m.BMSStar(q)
				case "bms**":
					return m.BMSStarStar(q, StarStarOptions{})
				default:
					return m.AllValid(q)
				}
			}()
			if err != nil {
				errs <- fmt.Errorf("%s: %v", algo, err)
				return
			}
			if !sameSets(res.Answers, want[algo].Answers) {
				errs <- fmt.Errorf("%s: concurrent answers diverge from serial", algo)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanShards checks the schedule invariants the pipeline relies on:
// contiguous cover of the batch, boundaries aligned to prefix runs, costs
// that sum to the plan total, and a dispatch order that is a
// costliest-first permutation of the shards.
func TestPlanShards(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		sets := make([]itemset.Set, 0, n)
		for i := 0; i < n; i++ {
			k := 2 + r.Intn(3)
			items := make([]itemset.Item, k)
			for j := range items {
				items[j] = itemset.Item(r.Intn(20))
			}
			sets = append(sets, itemset.New(items...))
		}
		// dedup via registry, then canonical order — the engine's contract
		reg := itemset.NewRegistry()
		uniq := sets[:0]
		for _, s := range sets {
			if reg.Add(s) {
				uniq = append(uniq, s)
			}
		}
		sets = uniq
		itemset.SortSets(sets)
		workers := 1 + r.Intn(8)
		numTx := 1 + r.Intn(1<<20)
		plan := counting.PlanShards(sets, numTx, workers)
		shards := plan.Shards
		if len(shards) == 0 {
			t.Fatalf("no shards for %d sets", len(sets))
		}
		if shards[0].Span[0] != 0 || shards[len(shards)-1].Span[1] != len(sets) {
			t.Fatalf("shards do not cover batch: %v over %d", shards, len(sets))
		}
		var costSum int64
		for i, sh := range shards {
			if i > 0 && sh.Span[0] != shards[i-1].Span[1] {
				t.Fatalf("shards not contiguous: %v", shards)
			}
			if sh.Span[0] >= sh.Span[1] {
				t.Fatalf("empty shard %d: %v", i, sh)
			}
			if sh.Cost < 1 {
				t.Fatalf("shard %d has cost %d; every nonempty shard costs at least 1", i, sh.Cost)
			}
			costSum += sh.Cost
		}
		if costSum != plan.Total {
			t.Fatalf("shard costs sum to %d, plan total %d", costSum, plan.Total)
		}
		if plan.Total < counting.MinShardCost && len(shards) != 1 {
			t.Fatalf("batch below MinShardCost split into %d shards", len(shards))
		}
		// every shard boundary must be a prefix-run boundary
		runBounds := map[int]bool{0: true}
		for _, run := range counting.PrefixRuns(sets) {
			runBounds[run[1]] = true
		}
		for _, sh := range shards {
			if !runBounds[sh.Span[1]] {
				t.Fatalf("shard end %d splits a prefix run", sh.Span[1])
			}
		}
		// Order is a costliest-first permutation.
		if len(plan.Order) != len(shards) {
			t.Fatalf("order has %d entries for %d shards", len(plan.Order), len(shards))
		}
		seen := make(map[int]bool, len(plan.Order))
		for i, si := range plan.Order {
			if si < 0 || si >= len(shards) || seen[si] {
				t.Fatalf("order %v is not a permutation of shards", plan.Order)
			}
			seen[si] = true
			if i > 0 && shards[plan.Order[i-1]].Cost < shards[si].Cost {
				t.Fatalf("order %v not costliest-first at %d", plan.Order, i)
			}
		}
	}
}

// TestEffectiveWorkers pins the knob semantics: 0 = GOMAXPROCS, negatives
// clamp to serial.
func TestEffectiveWorkers(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(1)), 5, 60)
	for _, tc := range []struct{ in, min int }{{1, 1}, {4, 4}, {-3, 1}, {0, 1}} {
		m, err := New(db, testParams(), WithWorkers(tc.in))
		if err != nil {
			t.Fatal(err)
		}
		got := m.effectiveWorkers()
		if tc.in > 0 && got != tc.in {
			t.Errorf("WithWorkers(%d).effectiveWorkers() = %d", tc.in, got)
		}
		if got < tc.min {
			t.Errorf("WithWorkers(%d).effectiveWorkers() = %d, below %d", tc.in, got, tc.min)
		}
	}
}

// TestExtendAnyMatchesNaive differentially checks the bitmask rewrite of
// extendAny against a straightforward reimplementation.
func TestExtendAnyMatchesNaive(t *testing.T) {
	naive := func(bases []itemset.Set, pool []itemset.Item) []itemset.Set {
		seen := itemset.NewRegistry()
		var out []itemset.Set
		for _, b := range bases {
			for _, x := range pool {
				if b.Contains(x) {
					continue
				}
				if c := b.With(x); seen.Add(c) {
					out = append(out, c)
				}
			}
		}
		itemset.SortSets(out)
		return out
	}
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		var bases []itemset.Set
		reg := itemset.NewRegistry()
		for i := 0; i < r.Intn(12); i++ {
			k := 2 + r.Intn(3)
			items := make([]itemset.Item, k)
			for j := range items {
				items[j] = itemset.Item(r.Intn(30))
			}
			if s := itemset.New(items...); reg.Add(s) {
				bases = append(bases, s)
			}
		}
		var pool []itemset.Item
		for j := 0; j < 30; j++ {
			if r.Intn(2) == 0 {
				pool = append(pool, itemset.Item(j))
			}
		}
		want := naive(bases, pool)
		got := extendAny(bases, pool)
		if !sameSets(want, got) {
			t.Fatalf("trial %d: extendAny diverges\n want %s\n got  %s",
				trial, setsString(want), setsString(got))
		}
	}
}
