package core

import (
	"time"

	"ccs/internal/obs"
)

// Metric names exported by the mining core. Keep metric names as
// package-level consts: the ccslint metriconst analyzer rejects computed
// names so the catalog in DESIGN.md stays greppable and complete.
const (
	// MetricMinesTotal counts mining runs started, by algorithm.
	MetricMinesTotal = "ccs_mines_total"
	// MetricMinesCompletedTotal counts runs that exhausted their search space.
	MetricMinesCompletedTotal = "ccs_mines_completed_total"
	// MetricMinesTruncatedTotal counts runs cut short by cancellation,
	// deadline, or budget (Result.Truncated).
	MetricMinesTruncatedTotal = "ccs_mines_truncated_total"
	// MetricLevelsTotal counts lattice levels visited.
	MetricLevelsTotal = "ccs_mine_levels_total"
	// MetricCandidatesTotal counts candidate sets generated.
	MetricCandidatesTotal = "ccs_candidates_total"
	// MetricCellsCountedTotal counts contingency-table cells charged to
	// counting batches (2^k per k-set).
	MetricCellsCountedTotal = "ccs_cells_counted_total"
	// MetricShardsTotal counts candidate shards counted by the parallel
	// level engine, by algorithm.
	MetricShardsTotal = "ccs_mine_shards_total"
	// MetricShardSeconds observes the wall-clock duration of counting one
	// candidate shard.
	MetricShardSeconds = "ccs_mine_shard_seconds"
	// MetricWorkersBusy gauges level-engine workers currently counting a
	// shard; its ratio to the configured worker count is the pool's
	// utilization.
	MetricWorkersBusy = "ccs_mine_workers_busy"
)

var (
	minesStarted   = obs.Default().CounterVec(MetricMinesTotal, "Mining runs started, by algorithm.", "algo")
	minesCompleted = obs.Default().CounterVec(MetricMinesCompletedTotal, "Mining runs that ran to completion, by algorithm.", "algo")
	minesTruncated = obs.Default().CounterVec(MetricMinesTruncatedTotal, "Mining runs truncated by cancellation, deadline, or budget, by algorithm.", "algo")
	minedLevels    = obs.Default().CounterVec(MetricLevelsTotal, "Lattice levels visited, by algorithm.", "algo")
	minedCands     = obs.Default().CounterVec(MetricCandidatesTotal, "Candidate sets generated, by algorithm.", "algo")
	countedCells   = obs.Default().CounterVec(MetricCellsCountedTotal, "Contingency-table cells counted (2^k per k-set), by algorithm.", "algo")
	minedShards    = obs.Default().CounterVec(MetricShardsTotal, "Candidate shards counted by the parallel level engine, by algorithm.", "algo")
	shardSeconds   = obs.Default().Histogram(MetricShardSeconds, "Wall-clock seconds spent counting one candidate shard.", obs.SubMillisecondBuckets)
	workersBusy    = obs.Default().Gauge(MetricWorkersBusy, "Level-engine workers currently counting a shard.")
)

// startMine records the start of one algorithm run.
func startMine(algo string) { minesStarted.With(algo).Inc() }

// recordMine records the outcome of one successful run: work totals from
// its Stats, the cells its control block charged, and whether it completed
// or was truncated. Failed runs (error return) record nothing beyond the
// start, so started - completed - truncated counts hard failures.
func recordMine(algo string, res *Result, ctl *runCtl) {
	if ctl != nil {
		countedCells.With(algo).Add(ctl.cells)
		ctl.prof.Finish()
	}
	if res == nil {
		return
	}
	if ctl != nil {
		res.Stats.CellsCounted = ctl.cells
	}
	minedLevels.With(algo).Add(int64(res.Stats.Levels))
	minedCands.With(algo).Add(int64(res.Stats.Candidates))
	if res.Truncated {
		minesTruncated.With(algo).Inc()
	} else {
		minesCompleted.With(algo).Inc()
	}
}

// endLevel appends the elapsed wall-clock time of one completed lattice
// level; every loop that increments Stats.Levels pairs it with exactly one
// endLevel call, so len(LevelDurations) == Levels on every Result.
func (s *Stats) endLevel(start time.Time) {
	s.LevelDurations = append(s.LevelDurations, time.Since(start))
}
