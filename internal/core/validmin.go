package core

import (
	"context"
	"fmt"
	"time"

	"ccs/internal/constraint"
	"ccs/internal/contingency"
	"ccs/internal/itemset"
)

// BMSPlus computes VALIDMIN(Q) naively: run the unconstrained baseline and
// keep the minimal correlated sets that satisfy the query. Because the
// constraints are applied only as a final filter, BMSPlus handles any
// constraint — including ones that are neither anti-monotone nor monotone.
func (m *Miner) BMSPlus(q *constraint.Conjunction) (*Result, error) {
	return m.BMSPlusContext(context.Background(), q)
}

// BMSPlusContext is BMSPlus honoring ctx and the Miner's Budget; on
// truncation the filtered answers of the completed levels are returned
// with Result.Truncated set.
func (m *Miner) BMSPlusContext(ctx context.Context, q *constraint.Conjunction) (*Result, error) {
	const algo = "bms+"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	out, err := m.runBaseline(ctl, algo)
	if err != nil {
		return nil, err
	}
	var answers []itemset.Set
	for _, s := range out.sig {
		if q.Satisfies(m.cat, s) {
			answers = append(answers, s)
		}
	}
	res := &Result{Answers: answers, Stats: out.stats}
	if out.cause != nil {
		truncate(res, out.cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}

// PlusPlusOptions configures BMSPlusPlus.
type PlusPlusOptions struct {
	// PushMonotoneSuccinct enables the paper's Modification I/II exactly as
	// printed: single-witness monotone succinct constraints are pushed into
	// candidate generation via the L1+/L1- split. This changes the answer
	// semantics from Definition 1 to Definition 2 whenever an invalid
	// subset is correlated (see DESIGN.md): with the push enabled the
	// algorithm returns MINVALID(Q) rather than VALIDMIN(Q). The default
	// (false) computes VALIDMIN(Q) exactly, pushing only anti-monotone
	// constraints and checking monotone constraints on output.
	PushMonotoneSuccinct bool
}

// BMSPlusPlus computes valid minimal answers with constraint pushing:
// succinct anti-monotone constraints restrict the item pool and candidate
// space, non-succinct anti-monotone constraints are checked before a
// contingency table is built, and monotone constraints filter the output
// (with correlated-but-invalid sets still blocking their supersets, which
// preserves Definition 1 minimality).
func (m *Miner) BMSPlusPlus(q *constraint.Conjunction, opts PlusPlusOptions) (*Result, error) {
	return m.BMSPlusPlusContext(context.Background(), q, opts)
}

// BMSPlusPlusContext is BMSPlusPlus honoring ctx and the Miner's Budget;
// cancellation is observed at level and batch boundaries and the level in
// flight is discarded, so the partial answers are those of the completed
// levels.
func (m *Miner) BMSPlusPlusContext(ctx context.Context, q *constraint.Conjunction, opts PlusPlusOptions) (*Result, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	if split.HasUnclassified() {
		return nil, fmt.Errorf("core: BMS++ requires anti-monotone or monotone constraints; %d constraint(s) are neither", len(split.Other))
	}

	const algo = "bms++"
	startMine(algo)
	ctl, release := m.newCtl(ctx)
	defer release()
	stats := Stats{}
	amAllowed := split.AMMGF().Allowed

	// Witness push (paper mode): only a single combined witness filter can
	// be pushed into L1+ (footnote 5); with zero or several witness
	// filters, every monotone succinct constraint is enforced on output.
	var witness constraint.ItemFilter
	if opts.PushMonotoneSuccinct {
		if ws := split.MMGF().Witnesses; len(ws) == 1 {
			witness = ws[0]
		}
	}

	l1 := m.frequentItems(amAllowed)
	var cands []itemset.Set
	var relevant func(itemset.Set) bool
	if witness != nil {
		var plus, minus []itemset.Item
		for _, i := range l1 {
			if witness(m.cat.Info(i)) {
				plus = append(plus, i)
			} else {
				minus = append(minus, i)
			}
		}
		cands = ctl.candgen(func() []itemset.Set { return pairs(plus, minus) })
		inPlus := make(map[itemset.Item]bool, len(plus))
		for _, i := range plus {
			inPlus[i] = true
		}
		relevant = func(s itemset.Set) bool {
			for _, i := range s {
				if inPlus[i] {
					return true
				}
			}
			return false
		}
	} else {
		cands = ctl.candgen(func() []itemset.Set { return pairs(l1, nil) })
	}
	stats.Candidates += len(cands)

	notsig := itemset.NewRegistry()
	var answers []itemset.Set
	var cause error
	for level := 2; len(cands) > 0 && level <= m.res.maxLevel; level++ {
		if cause = ctl.interrupted(&stats); cause != nil {
			break
		}
		stats.Levels++
		levelStart := time.Now()
		m.report("BMS++", "levelwise", level, len(cands))
		var answersLevel, notsigLevel []itemset.Set
		err := m.runLevel(ctl, &stats, levelSpec{
			algo:  algo,
			phase: "levelwise",
			level: level,
			cands: cands,
			// Non-succinct anti-monotone constraints prune before counting:
			// a failing set is invalid and so is every superset, and (AM
			// closure again) no valid set has a pruned subset, so minimality
			// detection is unaffected.
			pre: func(c itemset.Set) shardVerdict {
				if split.SatisfiesAMOther(m.cat, c) {
					return keepSet
				}
				return dropSetAM
			},
			eval: func(s itemset.Set, t *contingency.Table) {
				if !t.CTSupported(m.res.s, m.res.CTFraction) {
					return
				}
				if m.correlated(&stats, t) {
					// Correlated sets never enter NOTSIG, so supersets stay
					// blocked even when the set fails a monotone constraint —
					// that is what keeps the output minimal in the sense of
					// Definition 1.
					if split.SatisfiesM(m.cat, s) {
						answersLevel = append(answersLevel, s)
					}
				} else {
					notsigLevel = append(notsigLevel, s)
				}
			},
		})
		if err != nil {
			if cause = ctl.truncation(err); cause != nil {
				stats.endLevel(levelStart)
				break
			}
			return nil, err
		}
		answers = append(answers, answersLevel...)
		for _, s := range notsigLevel {
			notsig.Add(s)
		}
		cands = ctl.candgen(func() []itemset.Set { return extend(notsigLevel, l1, relevant, notsig) })
		stats.Candidates += len(cands)
		stats.endLevel(levelStart)
	}
	itemset.SortSets(answers)
	res := &Result{Answers: answers, Stats: stats}
	if cause != nil {
		truncate(res, cause)
	}
	recordMine(algo, res, ctl)
	return res, nil
}
