package core

import (
	"math/rand"
	"testing"

	"ccs/internal/constraint"
	"ccs/internal/itemset"
)

// bruteBorders derives both borders from the exhaustive reference.
func bruteBorders(t *testing.T, m *Miner, q *constraint.Conjunction, maxSize int) (lower, upper []itemset.Set) {
	t.Helper()
	brute, err := m.Brute(q, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	valid := itemset.NewRegistry()
	var validSets []itemset.Set
	for _, s := range brute.Space {
		if q.Satisfies(m.Catalog(), s) {
			valid.Add(s)
			validSets = append(validSets, s)
		}
	}
	for _, s := range validSets {
		// maximal: no valid in-space strict superset
		maximal := true
		for _, t := range validSets {
			if len(t) > len(s) && t.ContainsAll(s) {
				maximal = false
				break
			}
		}
		if maximal {
			upper = append(upper, s)
		}
	}
	itemset.SortSets(upper)
	return brute.MinValid, upper
}

func TestSolutionSpaceMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := corrDB(rand.New(rand.NewSource(seed)), 7, 150)
		m := newMiner(t, db)
		for name, q := range queryPool() {
			desc, err := m.SolutionSpace(q)
			if err != nil {
				t.Fatal(err)
			}
			wantLower, wantUpper := bruteBorders(t, m, q, 5)
			if !sameSets(desc.Lower, wantLower) {
				t.Fatalf("seed %d query %s: Lower = %s, want %s",
					seed, name, setsString(desc.Lower), setsString(wantLower))
			}
			if !sameSets(desc.Upper, wantUpper) {
				t.Fatalf("seed %d query %s: Upper = %s, want %s",
					seed, name, setsString(desc.Upper), setsString(wantUpper))
			}
		}
	}
}

func TestSolutionSpaceContains(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(2)), 7, 150)
	m := newMiner(t, db)
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 6))
	desc, err := m.SolutionSpace(q)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := m.Brute(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	inSpace := itemset.NewRegistry()
	for _, s := range brute.Space {
		if q.Satisfies(db.Catalog, s) {
			inSpace.Add(s)
		}
	}
	// Contains must agree with direct evaluation over the whole lattice
	for mask := 0; mask < 1<<7; mask++ {
		var items []itemset.Item
		for j := 0; j < 7; j++ {
			if mask&(1<<j) != 0 {
				items = append(items, itemset.Item(j))
			}
		}
		s := itemset.New(items...)
		if s.Size() < 2 || s.Size() > 5 {
			continue
		}
		if got, want := desc.Contains(s), inSpace.Has(s); got != want {
			t.Fatalf("Contains(%v) = %v, want %v", s, got, want)
		}
	}
}

func TestSolutionSpaceLowerEqualsBMSStar(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(4)), 7, 150)
	m := newMiner(t, db)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 3))
	desc, err := m.SolutionSpace(q)
	if err != nil {
		t.Fatal(err)
	}
	star, err := m.BMSStar(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(desc.Lower, star.Answers) {
		t.Fatalf("Lower = %s, BMS* = %s", setsString(desc.Lower), setsString(star.Answers))
	}
}

func TestSolutionSpaceRejectsUnclassified(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(1)), 5, 80)
	m := newMiner(t, db)
	q := constraint.And(constraint.NewAggregate(constraint.AggAvg, constraint.Price, constraint.LE, 3))
	if _, err := m.SolutionSpace(q); err == nil {
		t.Fatalf("avg constraint accepted")
	}
}

func TestSolutionSpaceEmpty(t *testing.T) {
	db := corrDB(rand.New(rand.NewSource(1)), 5, 80)
	m := newMiner(t, db)
	// impossible constraint: max(price) <= 0 excludes every item
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 0))
	desc, err := m.SolutionSpace(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Lower) != 0 || len(desc.Upper) != 0 {
		t.Fatalf("space not empty: %s / %s", setsString(desc.Lower), setsString(desc.Upper))
	}
	if desc.Contains(itemset.New(0, 1)) {
		t.Fatalf("empty space contains a set")
	}
}
