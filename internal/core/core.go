// Package core implements the paper's constrained correlation-mining
// algorithms: the Brin-Motwani-Silverstein baseline (BMS) for minimal
// correlated and CT-supported sets, BMS+ and BMS++ for valid minimal
// answers (Definition 1), BMS* and BMS** for minimal valid answers
// (Definition 2), and a brute-force reference (Brute) used to validate all
// of them.
//
// Answer-set semantics (with Q the query's constraint conjunction):
//
//	VALIDMIN(Q) = minimal correlated & CT-supported sets that satisfy Q
//	MINVALID(Q) = minimal elements of {S : S correlated, CT-supported, valid}
//
// VALIDMIN ⊆ MINVALID always; the two coincide when every constraint is
// anti-monotone (Theorem 1).
package core

import (
	"fmt"
	"time"

	"ccs/internal/chisq"
	"ccs/internal/constraint"
	"ccs/internal/contingency"
	"ccs/internal/counting"
	"ccs/internal/dataset"
	"ccs/internal/itemset"
	"ccs/internal/obs"
)

// Params carries the statistical thresholds of a correlation query.
type Params struct {
	// Alpha is the chi-squared significance level (e.g. 0.95): a set is
	// correlated when its statistic reaches the df=1 critical value at
	// Alpha, following the paper's convention of one degree of freedom for
	// boolean variables.
	Alpha float64
	// CellSupport is the absolute cell-support threshold s. If zero,
	// CellSupportFrac is used instead.
	CellSupport int
	// CellSupportFrac expresses s as a fraction of the transaction count.
	CellSupportFrac float64
	// CTFraction is p: the fraction of contingency-table cells that must
	// have count >= s for the set to be CT-supported.
	CTFraction float64
	// MaxLevel caps the itemset size explored (safety bound). Zero means
	// the default of 12.
	MaxLevel int
}

// DefaultParams mirrors the paper's experimental settings: significance
// level 0.9 for the chi-squared tests and 25% thresholds for support and
// CT-support.
func DefaultParams() Params {
	return Params{Alpha: 0.9, CellSupportFrac: 0.25, CTFraction: 0.25}
}

const defaultMaxLevel = 12

// resolved is a validated Params bound to a database size.
type resolved struct {
	Params
	s        int     // cell support threshold in absolute transactions
	cutoff   float64 // chi-squared critical value at Alpha, df=1
	maxLevel int
}

func (p Params) resolve(numTx int) (resolved, error) {
	r := resolved{Params: p}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return r, fmt.Errorf("core: Alpha %g outside (0,1)", p.Alpha)
	}
	if p.CTFraction < 0 || p.CTFraction > 1 {
		return r, fmt.Errorf("core: CTFraction %g outside [0,1]", p.CTFraction)
	}
	switch {
	case p.CellSupport > 0:
		r.s = p.CellSupport
	case p.CellSupport < 0:
		return r, fmt.Errorf("core: negative CellSupport %d", p.CellSupport)
	case p.CellSupportFrac > 0 && p.CellSupportFrac <= 1:
		r.s = int(p.CellSupportFrac * float64(numTx))
		if r.s < 1 {
			r.s = 1
		}
	default:
		return r, fmt.Errorf("core: need CellSupport > 0 or CellSupportFrac in (0,1], got %d and %g",
			p.CellSupport, p.CellSupportFrac)
	}
	cutoff, err := chisq.Quantile(p.Alpha, 1)
	if err != nil {
		return r, err
	}
	r.cutoff = cutoff
	r.maxLevel = p.MaxLevel
	if r.maxLevel == 0 {
		r.maxLevel = defaultMaxLevel
	}
	if r.maxLevel < 2 {
		return r, fmt.Errorf("core: MaxLevel %d below 2", r.maxLevel)
	}
	return r, nil
}

// Stats mirrors the cost accounting of the paper's Section 3.3: the number
// of sets an algorithm considers (contingency tables it constructs)
// dominates, since it drives database scanning.
type Stats struct {
	SetsConsidered  int // contingency tables constructed
	PrunedByAM      int // candidates dropped by non-succinct AM constraints before counting
	ChiSquaredTests int
	Levels          int // lattice levels visited
	Candidates      int // candidates generated (before AM pre-checks)
	DBScans         int // batch counting passes issued to the Counter

	// CellsCounted is the number of contingency-table cells charged to
	// counting batches (2^k per k-set) — the same unit Budget.MaxCells
	// caps and the unit per-tenant work quotas are charged in, so an
	// expensive mine counts more than a cheap one.
	CellsCounted int64

	// LevelDurations holds the wall-clock time of each lattice level
	// visited, in visit order; len(LevelDurations) == Levels. Excluded
	// from JSON — the server surfaces it as level_seconds.
	LevelDurations []time.Duration `json:"-"`
}

// Result is the outcome of a mining run.
type Result struct {
	// Answers is the computed answer set in canonical order.
	Answers []itemset.Set
	// Stats records the work performed.
	Stats Stats
	// Truncated reports that the run stopped before exhausting the search
	// space — the context was cancelled, its deadline passed, or the
	// Budget ran out. Answers then holds the sound answers of the lattice
	// levels that completed: every reported set genuinely belongs to the
	// full answer set, but some answers may be missing.
	Truncated bool
	// Cause is the truncation cause: context.Canceled,
	// context.DeadlineExceeded, or an error wrapping ErrBudgetExceeded.
	// Nil when Truncated is false.
	Cause error
}

// Miner binds a database, a counting engine and query parameters. Create
// one with New and run any of the algorithm methods. All run state lives
// in per-run control blocks, so a Miner is safe for concurrent runs
// exactly when its counter is: the bitmap-family counters (the default)
// qualify, the horizontal scanners do not.
type Miner struct {
	cat      *dataset.Catalog
	cnt      counting.Counter
	res      resolved
	progress ProgressFunc
	budget   Budget
	workers  int
	prof     *obs.Profile // nil = profiling off (see WithProfile)
}

// Option configures a Miner.
type Option func(*minerConfig)

type minerConfig struct {
	counter  counting.Counter
	progress ProgressFunc
	budget   Budget
	workers  int
	prof     *obs.Profile
}

// WithCounter selects the counting engine (default: a BitmapCounter built
// from the database).
func WithCounter(c counting.Counter) Option {
	return func(cfg *minerConfig) { cfg.counter = c }
}

// WithWorkers sets the number of worker goroutines the level engine uses
// to shard each lattice level's candidate evaluation (see parallel.go):
// 0 (the default) means GOMAXPROCS, 1 forces the exact serial path, and
// negative values are treated as 1. Parallel counting requires a counter
// implementing counting.ShardCounter (the bitmap family); with any other
// counter the engine silently runs serially. Workers only changes
// wall-clock time — the mined answers, Stats counters, and truncation
// behavior are identical at every setting.
func WithWorkers(n int) Option {
	return func(cfg *minerConfig) { cfg.workers = n }
}

// ProgressEvent reports one lattice level of work as it starts.
type ProgressEvent struct {
	// Algorithm is the running algorithm's name (e.g. "BMS++").
	Algorithm string
	// Phase distinguishes multi-phase algorithms: "levelwise" for the
	// downward search, "supp"/"chi" for BMS**'s phases, "sweep" for the
	// upward sweep of BMS*.
	Phase string
	// Level is the itemset size being processed.
	Level int
	// Candidates is the number of candidate sets at this level after
	// pruning by succinct constraints and candidate generation.
	Candidates int
}

// ProgressFunc observes mining progress. It is called synchronously from
// the mining loop; keep it fast.
type ProgressFunc func(ProgressEvent)

// WithProgress installs a progress observer.
func WithProgress(fn ProgressFunc) Option {
	return func(cfg *minerConfig) { cfg.progress = fn }
}

// New validates the parameters against db and returns a ready Miner.
func New(db *dataset.DB, p Params, opts ...Option) (*Miner, error) {
	cfg := minerConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.counter == nil {
		cfg.counter = counting.NewBitmapCounter(db)
	}
	r, err := p.resolve(db.NumTx())
	if err != nil {
		return nil, err
	}
	if ir, ok := cfg.counter.(counting.IndexReporter); ok {
		cfg.prof.SetIndex(string(ir.IndexBackend()), ir.IndexBytes())
	}
	return &Miner{cat: db.Catalog, cnt: cfg.counter, res: r, progress: cfg.progress, budget: cfg.budget, workers: cfg.workers, prof: cfg.prof}, nil
}

// Catalog returns the item catalog the miner operates over.
func (m *Miner) Catalog() *dataset.Catalog { return m.cat }

// CellSupport returns the resolved absolute cell-support threshold s.
func (m *Miner) CellSupport() int { return m.res.s }

// Cutoff returns the chi-squared critical value in force.
func (m *Miner) Cutoff() float64 { return m.res.cutoff }

// frequentItems returns the items with support >= s that pass the allowed
// filter (nil = no filter), in ascending order.
func (m *Miner) frequentItems(allowed constraint.ItemFilter) []itemset.Item {
	sup := m.cnt.ItemSupports()
	var out []itemset.Item
	for i, c := range sup {
		if c < m.res.s {
			continue
		}
		if allowed != nil && !allowed(m.cat.Info(itemset.Item(i))) {
			continue
		}
		out = append(out, itemset.Item(i))
	}
	return out
}

// pairs returns the level-2 candidates {a, b} with a from plus and b from
// the union of plus and minus (the paper's CAND_2 rule; pass the same slice
// twice for the unconstrained all-pairs rule with minus nil).
func pairs(plus, minus []itemset.Item) []itemset.Set {
	var out []itemset.Set
	seen := itemset.NewRegistry()
	for _, a := range plus {
		for _, b := range plus {
			if a < b {
				out = append(out, itemset.New(a, b))
			}
		}
		for _, b := range minus {
			if a == b {
				continue
			}
			s := itemset.New(a, b)
			if seen.Add(s) {
				out = append(out, s)
			}
		}
	}
	itemset.SortSets(out)
	return out
}

// extend generates the next level's candidates: every |base|+1-set obtained
// by adding one pool item to a base set, deduplicated, and kept only if
// every |base|-subset T with relevant(T) true is present in blocked.
// relevant == nil means every subset must be present (the classic Apriori
// prune); the witness-push algorithms pass a filter that exempts
// unwitnessed subsets.
func extend(bases []itemset.Set, pool []itemset.Item, relevant func(itemset.Set) bool, blocked *itemset.Registry) []itemset.Set {
	seen := itemset.NewRegistry()
	var out []itemset.Set
	for _, b := range bases {
		for _, x := range pool {
			if b.Contains(x) {
				continue
			}
			cand := b.With(x)
			if !seen.Add(cand) {
				continue
			}
			ok := true
			cand.Subsets1(func(sub itemset.Set) bool {
				if relevant != nil && !relevant(sub) {
					return true
				}
				if !blocked.Has(sub) {
					ok = false
					return false
				}
				return true
			})
			if ok {
				out = append(out, cand)
			}
		}
	}
	itemset.SortSets(out)
	return out
}

// report emits a progress event if an observer is installed.
func (m *Miner) report(algorithm, phase string, level, candidates int) {
	if m.progress != nil {
		m.progress(ProgressEvent{Algorithm: algorithm, Phase: phase, Level: level, Candidates: candidates})
	}
}

// correlated applies the chi-squared test at the resolved cutoff.
func (m *Miner) correlated(stats *Stats, t *contingency.Table) bool {
	stats.ChiSquaredTests++
	return t.ChiSquared() >= m.res.cutoff
}
