package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ccs/internal/constraint"
	"ccs/internal/contingency"
	"ccs/internal/counting"
	"ccs/internal/itemset"
)

// randomConjunction builds a random classified conjunction of 0-3
// constraints over the 6-item price/type test catalog.
func randomConjunction(r *rand.Rand) *constraint.Conjunction {
	pool := []func() constraint.Constraint{
		func() constraint.Constraint {
			return constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, float64(r.Intn(8)))
		},
		func() constraint.Constraint {
			return constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.GE, float64(r.Intn(8)))
		},
		func() constraint.Constraint {
			return constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, float64(r.Intn(8)))
		},
		func() constraint.Constraint {
			return constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.GE, float64(r.Intn(8)))
		},
		func() constraint.Constraint {
			return constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.LE, float64(r.Intn(15)))
		},
		func() constraint.Constraint {
			return constraint.NewAggregate(constraint.AggSum, constraint.Price, constraint.GE, float64(r.Intn(15)))
		},
		func() constraint.Constraint {
			return constraint.NewAggregate(constraint.AggCount, constraint.Price, constraint.LE, float64(r.Intn(4)+1))
		},
		func() constraint.Constraint {
			types := []string{"soda", "snack", "frozen"}
			ops := []constraint.SetOp{constraint.OpDisjoint, constraint.OpIntersects, constraint.OpWithin, constraint.OpContainsAll}
			return constraint.NewDomain(ops[r.Intn(len(ops))], constraint.Type, types[r.Intn(len(types))])
		},
	}
	n := r.Intn(4)
	cs := make([]constraint.Constraint, n)
	for i := range cs {
		cs[i] = pool[r.Intn(len(pool))]()
	}
	return constraint.And(cs...)
}

func TestQuickAllAlgorithmsAgainstBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("quick consistency sweep")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := corrDB(r, 6, 120)
		m, err := New(db, testParams())
		if err != nil {
			return false
		}
		q := randomConjunction(r)
		brute, err := m.Brute(q, 4)
		if err != nil {
			return false
		}
		plus, err := m.BMSPlus(q)
		if err != nil {
			return false
		}
		if !sameSets(plus.Answers, brute.ValidMin) {
			t.Logf("seed %d q=%s: BMS+ %s vs %s", seed, q, setsString(plus.Answers), setsString(brute.ValidMin))
			return false
		}
		pp, err := m.BMSPlusPlus(q, PlusPlusOptions{})
		if err != nil {
			return false
		}
		if !sameSets(pp.Answers, brute.ValidMin) {
			t.Logf("seed %d q=%s: BMS++ %s vs %s", seed, q, setsString(pp.Answers), setsString(brute.ValidMin))
			return false
		}
		star, err := m.BMSStar(q)
		if err != nil {
			return false
		}
		if !sameSets(star.Answers, brute.MinValid) {
			t.Logf("seed %d q=%s: BMS* %s vs %s", seed, q, setsString(star.Answers), setsString(brute.MinValid))
			return false
		}
		ss, err := m.BMSStarStar(q, StarStarOptions{})
		if err != nil {
			return false
		}
		if !sameSets(ss.Answers, brute.MinValid) {
			t.Logf("seed %d q=%s: BMS** %s vs %s", seed, q, setsString(ss.Answers), setsString(brute.MinValid))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStarStarPushMatchesExact(t *testing.T) {
	// For BMS** the witness push is a pure optimization: the answer set
	// (MINVALID) must be identical with and without it.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := corrDB(r, 6, 120)
		m, err := New(db, testParams())
		if err != nil {
			return false
		}
		q := randomConjunction(r)
		a, err := m.BMSStarStar(q, StarStarOptions{})
		if err != nil {
			return false
		}
		b, err := m.BMSStarStar(q, StarStarOptions{PushMonotoneSuccinct: true})
		if err != nil {
			return false
		}
		return sameSets(a.Answers, b.Answers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// failingCounter injects an error after a given number of batches, to
// verify error propagation through every algorithm.
type failingCounter struct {
	inner counting.Counter
	after int
	calls int
}

var errInjected = errors.New("injected counting failure")

func (f *failingCounter) NumTx() int          { return f.inner.NumTx() }
func (f *failingCounter) ItemSupports() []int { return f.inner.ItemSupports() }
func (f *failingCounter) Stats() counting.Stats {
	return f.inner.Stats()
}
func (f *failingCounter) CountTables(sets []itemset.Set) ([]*contingency.Table, error) {
	f.calls++
	if f.calls > f.after {
		return nil, errInjected
	}
	return f.inner.CountTables(sets)
}

func TestCountingFailurePropagates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	db := corrDB(r, 7, 150)
	q := constraint.And(constraint.NewAggregate(constraint.AggMin, constraint.Price, constraint.LE, 3))
	for after := 0; after < 2; after++ {
		fc := &failingCounter{inner: counting.NewBitmapCounter(db), after: after}
		m, err := New(db, testParams(), WithCounter(fc))
		if err != nil {
			t.Fatal(err)
		}
		type runFn func() error
		runs := map[string]runFn{
			"BMS":   func() error { _, err := m.BMS(); return err },
			"BMS+":  func() error { _, err := m.BMSPlus(q); return err },
			"BMS++": func() error { _, err := m.BMSPlusPlus(q, PlusPlusOptions{}); return err },
			"BMS*":  func() error { _, err := m.BMSStar(q); return err },
			"BMS**": func() error { _, err := m.BMSStarStar(q, StarStarOptions{}); return err },
			"Brute": func() error { _, err := m.Brute(q, 3); return err },
		}
		for name, run := range runs {
			fc.calls = 0
			if err := run(); !errors.Is(err, errInjected) {
				t.Errorf("after=%d %s: err = %v, want injected failure", after, name, err)
			}
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	// Structural invariants on the reported statistics.
	r := rand.New(rand.NewSource(8))
	db := corrDB(r, 7, 200)
	m, err := New(db, testParams())
	if err != nil {
		t.Fatal(err)
	}
	q := constraint.And(constraint.NewAggregate(constraint.AggMax, constraint.Price, constraint.LE, 5))
	res, err := m.BMSPlusPlus(q, PlusPlusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SetsConsidered > st.Candidates {
		t.Errorf("considered %d > generated %d", st.SetsConsidered, st.Candidates)
	}
	if st.ChiSquaredTests > st.SetsConsidered {
		t.Errorf("chi tests %d > considered %d", st.ChiSquaredTests, st.SetsConsidered)
	}
	if st.DBScans > st.Levels {
		t.Errorf("scans %d > levels %d", st.DBScans, st.Levels)
	}
	if st.SetsConsidered+st.PrunedByAM > st.Candidates {
		t.Errorf("considered+pruned %d > candidates %d", st.SetsConsidered+st.PrunedByAM, st.Candidates)
	}
}
