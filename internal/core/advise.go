package core

import (
	"fmt"
	"strings"

	"ccs/internal/constraint"
)

// Advice is a query plan in the sense of the paper's Section 3.3: the
// constraint classification, the measured item selectivity, and the
// algorithm recommendation the analysis implies.
type Advice struct {
	// AllAntiMonotone reports Theorem 1.2's case, where VALIDMIN =
	// MINVALID and BMS++ dominates all four algorithms.
	AllAntiMonotone bool
	// HasUnclassified reports constraints that are neither anti-monotone
	// nor monotone; only BMSPlus and AllValid handle them.
	HasUnclassified bool
	// ItemSelectivity is the fraction of catalog items whose singleton
	// satisfies the conjunction — the selectivity notion of the paper's
	// sweeps.
	ItemSelectivity float64
	// AMSuccinct .. MOther count the four constraint buckets.
	AMSuccinct, AMOther, MSuccinct, MOther int
	// ForValidMin and ForMinValid name the recommended algorithm per
	// answer-set semantics.
	ForValidMin string
	ForMinValid string
	// Reasons explains the recommendation in the analysis's terms.
	Reasons []string
}

// selectivityCrossover approximates where the paper's experiments put the
// BMS*/BMS** cross-over (Figure 8: around 20-30% item selectivity).
const selectivityCrossover = 0.25

// Advise classifies the query against this miner's catalog and recommends
// algorithms per the paper's cost analysis: |BMS++| <= |BMS+| always, so
// BMS++ always wins for valid minimal answers; for minimal valid answers
// BMS** wins when the constraints are selective (it explores only the
// valid region, Σ v_i) and BMS* wins when they are not (it explores the
// correlated region once, Σ c_i, instead of a bloated valid region).
func (m *Miner) Advise(q *constraint.Conjunction) (*Advice, error) {
	split, err := q.Classify()
	if err != nil {
		return nil, err
	}
	a := &Advice{
		AllAntiMonotone: split.AllAntiMonotone(),
		HasUnclassified: split.HasUnclassified(),
		ItemSelectivity: constraint.ItemSelectivity(m.cat, q),
		AMSuccinct:      len(split.AMSuccinct),
		AMOther:         len(split.AMOther),
		MSuccinct:       len(split.MSuccinct),
		MOther:          len(split.MOther),
	}
	switch {
	case a.HasUnclassified:
		a.ForValidMin = "BMSPlus"
		a.ForMinValid = "AllValid"
		a.Reasons = append(a.Reasons,
			"query contains constraints that are neither anti-monotone nor monotone; their solution space may have holes, so only post-filtering (BMSPlus) or full enumeration of valid solutions (AllValid) is sound")
	case a.AllAntiMonotone:
		a.ForValidMin = "BMSPlusPlus"
		a.ForMinValid = "BMSPlusPlus"
		a.Reasons = append(a.Reasons,
			"all constraints are anti-monotone: VALIDMIN = MINVALID (Theorem 1.2) and |BMS++| <= |BMS+| <= |BMS*|, |BMS++| <= |BMS**|, so BMS++ dominates")
	default:
		a.ForValidMin = "BMSPlusPlus"
		a.Reasons = append(a.Reasons,
			"|BMS++| <= |BMS+| holds for every constraint mix, so BMS++ is always preferred for valid minimal answers")
		if a.ItemSelectivity <= selectivityCrossover {
			a.ForMinValid = "BMSStarStar"
			a.Reasons = append(a.Reasons, fmt.Sprintf(
				"item selectivity %.0f%% is below the ~%.0f%% cross-over: the valid region is small, so BMS**'s two-phase sweep over it (Σ v_i) beats re-running the unconstrained search (Σ c_i)",
				100*a.ItemSelectivity, 100*selectivityCrossover))
		} else {
			a.ForMinValid = "BMSStar"
			a.Reasons = append(a.Reasons, fmt.Sprintf(
				"item selectivity %.0f%% is above the ~%.0f%% cross-over: the constraints barely prune, so the naive BMS* (one unconstrained run plus a small upward sweep) wins",
				100*a.ItemSelectivity, 100*selectivityCrossover))
		}
	}
	if a.AMSuccinct > 0 {
		a.Reasons = append(a.Reasons,
			"succinct anti-monotone constraints are pushed into the item pool before any counting (Modification I)")
	}
	if a.MSuccinct > 0 && !a.AllAntiMonotone {
		a.Reasons = append(a.Reasons,
			"monotone succinct constraints can be pushed via the witness rule (paper mode); note this shifts BMS++'s output from VALIDMIN to MINVALID (see DESIGN.md)")
	}
	return a, nil
}

// String renders the advice for the CLI.
func (a *Advice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "constraints: %d a.m. succinct, %d a.m. other, %d monotone succinct, %d monotone other",
		a.AMSuccinct, a.AMOther, a.MSuccinct, a.MOther)
	if a.HasUnclassified {
		b.WriteString(", plus unclassified")
	}
	fmt.Fprintf(&b, "\nitem selectivity: %.1f%%\n", 100*a.ItemSelectivity)
	fmt.Fprintf(&b, "recommended for valid minimal answers: %s\n", a.ForValidMin)
	fmt.Fprintf(&b, "recommended for minimal valid answers: %s\n", a.ForMinValid)
	for _, r := range a.Reasons {
		fmt.Fprintf(&b, "  - %s\n", r)
	}
	return b.String()
}
